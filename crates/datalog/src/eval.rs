//! Bottom-up evaluation: naive and semi-naive, stratum by stratum.
//!
//! Both strategies share a single rule-body matcher — a backtracking
//! nested-loop join driven by the per-column hash indexes of
//! [`crate::Relation`]. The semi-naive strategy additionally maintains
//! delta relations per recursive predicate and instantiates, for each rule
//! and each body occurrence of a same-stratum predicate, a variant where
//! that occurrence draws from the delta of the previous iteration.
//!
//! Negated literals may contain variables that occur nowhere else in the
//! body; these are read as existentially quantified *inside* the negation
//! (`¬∃Y p(X, Y)`), which is the convention the MultiLog reduction axioms
//! (Figure 12 of the paper) rely on. Stratification guarantees the negated
//! relation is fully computed before it is consulted.

use std::collections::HashMap;

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::program::Program;
use crate::storage::{Database, Fact, Relation};
use crate::term::{Const, Term};
use crate::{DatalogError, Result};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-derive everything each iteration; kept for validation/ablation.
    Naive,
    /// Delta-driven evaluation; the default.
    #[default]
    SemiNaive,
}

/// Counters describing an evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations summed over all strata.
    pub iterations: usize,
    /// Number of rule-variant applications attempted.
    pub rule_applications: usize,
    /// Facts produced (including duplicates that were discarded).
    pub facts_considered: usize,
    /// Facts actually added to the database.
    pub facts_added: usize,
}

/// A bottom-up evaluator for one program.
pub struct Engine<'p> {
    program: &'p Program,
    strategy: Strategy,
    fact_limit: usize,
    strata: Vec<Vec<String>>,
}

impl<'p> Engine<'p> {
    /// Create an engine, stratifying the program.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratifiable`] if negation occurs through
    /// recursion.
    pub fn new(program: &'p Program) -> Result<Self> {
        let strat = program.stratify()?;
        Ok(Engine {
            program,
            strategy: Strategy::SemiNaive,
            fact_limit: 10_000_000,
            strata: strat.iter().map(<[String]>::to_vec).collect(),
        })
    }

    /// Select the evaluation strategy (default: semi-naive).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the guard limit on the number of derived facts.
    pub fn with_fact_limit(mut self, limit: usize) -> Self {
        self.fact_limit = limit;
        self
    }

    /// Evaluate to fixpoint and return the full database.
    pub fn run(&self) -> Result<Database> {
        Ok(self.run_with_stats()?.0)
    }

    /// Evaluate only the predicates the given query predicates depend on
    /// — the practical counterpart of magic sets for ad hoc queries: the
    /// answers over the restricted database coincide with those over the
    /// full one, but unrelated relations are never materialized.
    pub fn run_for_query<'a>(
        &self,
        query_preds: impl IntoIterator<Item = &'a str>,
    ) -> Result<Database> {
        let needed = self.program.dependencies_of(query_preds);
        Ok(self.run_inner(Some(&needed))?.0)
    }

    /// Evaluate to fixpoint, also returning counters.
    pub fn run_with_stats(&self) -> Result<(Database, EvalStats)> {
        self.run_inner(None)
    }

    fn run_inner(
        &self,
        restrict: Option<&std::collections::HashSet<String>>,
    ) -> Result<(Database, EvalStats)> {
        let mut db = Database::new();
        let mut stats = EvalStats::default();

        // Ensure every predicate has a (possibly empty) relation so that
        // negation over never-derived predicates works uniformly.
        for pred in self.program.predicates() {
            db.relation_mut(pred);
        }

        for stratum in &self.strata {
            let in_stratum: HashMap<&str, ()> = stratum.iter().map(|s| (s.as_str(), ())).collect();
            // Rules whose head is in this stratum (and, when restricted,
            // in the query's dependency cone).
            let rules: Vec<&Clause> = self
                .program
                .clauses()
                .iter()
                .filter(|c| in_stratum.contains_key(c.head.predicate.as_ref()))
                .filter(|c| restrict.is_none_or(|n| n.contains(c.head.predicate.as_ref())))
                .collect();
            match self.strategy {
                Strategy::Naive => {
                    self.run_stratum_naive(&rules, &mut db, &mut stats)?;
                }
                Strategy::SemiNaive => {
                    self.run_stratum_seminaive(&rules, &in_stratum, &mut db, &mut stats)?;
                }
            }
        }
        Ok((db, stats))
    }

    fn run_stratum_naive(
        &self,
        rules: &[&Clause],
        db: &mut Database,
        stats: &mut EvalStats,
    ) -> Result<()> {
        loop {
            stats.iterations += 1;
            let mut new_facts: Vec<(String, Fact)> = Vec::new();
            for rule in rules {
                stats.rule_applications += 1;
                let derived = eval_rule(rule, db, None)?;
                stats.facts_considered += derived.len();
                for f in derived {
                    new_facts.push((rule.head.predicate.to_string(), f));
                }
            }
            let mut changed = false;
            for (pred, fact) in new_facts {
                if db.insert(&pred, fact) {
                    stats.facts_added += 1;
                    changed = true;
                }
            }
            if db.fact_count() > self.fact_limit {
                return Err(DatalogError::FactLimitExceeded {
                    limit: self.fact_limit,
                });
            }
            if !changed {
                return Ok(());
            }
        }
    }

    fn run_stratum_seminaive(
        &self,
        rules: &[&Clause],
        in_stratum: &HashMap<&str, ()>,
        db: &mut Database,
        stats: &mut EvalStats,
    ) -> Result<()> {
        // Iteration 0: apply every rule once against the current database
        // (covers facts and rules whose bodies only use lower strata).
        let mut delta: HashMap<String, Relation> = HashMap::new();
        stats.iterations += 1;
        for rule in rules {
            stats.rule_applications += 1;
            let derived = eval_rule(rule, db, None)?;
            stats.facts_considered += derived.len();
            for f in derived {
                if db.insert(&rule.head.predicate, f.clone()) {
                    stats.facts_added += 1;
                    delta
                        .entry(rule.head.predicate.to_string())
                        .or_default()
                        .insert(f);
                }
            }
        }

        while !delta.is_empty() {
            stats.iterations += 1;
            if db.fact_count() > self.fact_limit {
                return Err(DatalogError::FactLimitExceeded {
                    limit: self.fact_limit,
                });
            }
            let mut next_delta: HashMap<String, Relation> = HashMap::new();
            for rule in rules {
                // One variant per body occurrence of a same-stratum
                // predicate whose delta is non-empty.
                for (pos, lit) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = lit else { continue };
                    if !in_stratum.contains_key(atom.predicate.as_ref()) {
                        continue;
                    }
                    let Some(d) = delta.get(atom.predicate.as_ref()) else {
                        continue;
                    };
                    if d.is_empty() {
                        continue;
                    }
                    stats.rule_applications += 1;
                    let derived = eval_rule(rule, db, Some((pos, d)))?;
                    stats.facts_considered += derived.len();
                    for f in derived {
                        if db.insert(&rule.head.predicate, f.clone()) {
                            stats.facts_added += 1;
                            next_delta
                                .entry(rule.head.predicate.to_string())
                                .or_default()
                                .insert(f);
                        }
                    }
                }
            }
            delta = next_delta;
        }
        Ok(())
    }
}

/// Evaluate one rule against the database, optionally forcing body
/// position `delta.0` to draw facts from `delta.1` instead of the full
/// relation. Returns the head instantiations (possibly with duplicates).
pub(crate) fn eval_rule(
    rule: &Clause,
    db: &Database,
    delta: Option<(usize, &Relation)>,
) -> Result<Vec<Fact>> {
    let mut results = Vec::new();
    let mut bindings: HashMap<&str, Const> = HashMap::new();
    match_body(rule, 0, db, delta, &mut bindings, &mut results)?;
    Ok(results)
}

fn match_body<'r>(
    rule: &'r Clause,
    pos: usize,
    db: &Database,
    delta: Option<(usize, &Relation)>,
    bindings: &mut HashMap<&'r str, Const>,
    results: &mut Vec<Fact>,
) -> Result<()> {
    if pos == rule.body.len() {
        let fact: Fact = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => bindings
                    .get(v.as_ref())
                    .expect("safety check guarantees head vars are bound")
                    .clone(),
            })
            .collect();
        results.push(fact);
        return Ok(());
    }
    match &rule.body[pos] {
        Literal::Pos(atom) => {
            let empty = Relation::new();
            let rel: &Relation = match delta {
                Some((dpos, d)) if dpos == pos => d,
                _ => db.relation(&atom.predicate).unwrap_or(&empty),
            };
            let pattern = probe_pattern(atom, bindings);
            // Collect matches eagerly: the borrow of `rel` must end before
            // we mutate `bindings` if rel came from db; facts are cheap to
            // clone (Arc-backed constants).
            let matches: Vec<Fact> = rel.matching(&pattern).cloned().collect();
            for fact in matches {
                let mut bound_here: Vec<&str> = Vec::new();
                let mut ok = true;
                for (term, value) in atom.terms.iter().zip(&fact) {
                    match term {
                        Term::Const(c) => {
                            if c != value {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(v) => match bindings.get(v.as_ref()) {
                            Some(existing) => {
                                if existing != value {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                bindings.insert(v.as_ref(), value.clone());
                                bound_here.push(v.as_ref());
                            }
                        },
                    }
                }
                if ok {
                    match_body(rule, pos + 1, db, delta, bindings, results)?;
                }
                for v in bound_here {
                    bindings.remove(v);
                }
            }
            Ok(())
        }
        Literal::Neg(atom) => {
            let empty = Relation::new();
            let rel = db.relation(&atom.predicate).unwrap_or(&empty);
            let pattern = probe_pattern(atom, bindings);
            // ¬∃(free vars): any matching fact that is consistent with the
            // repeated-variable constraints refutes the literal.
            let exists = rel
                .matching(&pattern)
                .any(|fact| consistent_with_repeats(atom, fact, bindings));
            if exists {
                Ok(())
            } else {
                match_body(rule, pos + 1, db, delta, bindings, results)
            }
        }
        Literal::Cmp { op, lhs, rhs } => {
            let l = resolve(lhs, bindings);
            let r = resolve(rhs, bindings);
            let (l, r) = (
                l.expect("safety check guarantees cmp vars are bound"),
                r.expect("safety check guarantees cmp vars are bound"),
            );
            if op.eval(&l, &r)? {
                match_body(rule, pos + 1, db, delta, bindings, results)
            } else {
                Ok(())
            }
        }
        Literal::Arith {
            target,
            lhs,
            op,
            rhs,
        } => {
            let as_int = |t: &Term| -> Result<i64> {
                match resolve(t, bindings)
                    .expect("safety check guarantees arith operands are bound")
                {
                    Const::Int(i) => Ok(i),
                    other => Err(DatalogError::IncomparableTerms {
                        left: other.to_string(),
                        right: "integer".to_owned(),
                    }),
                }
            };
            let value = Const::Int(op.eval(as_int(lhs)?, as_int(rhs)?)?);
            match target {
                Term::Const(c) => {
                    if *c == value {
                        match_body(rule, pos + 1, db, delta, bindings, results)
                    } else {
                        Ok(())
                    }
                }
                Term::Var(v) => match bindings.get(v.as_ref()) {
                    Some(existing) => {
                        if *existing == value {
                            match_body(rule, pos + 1, db, delta, bindings, results)
                        } else {
                            Ok(())
                        }
                    }
                    None => {
                        bindings.insert(v.as_ref(), value);
                        let r = match_body(rule, pos + 1, db, delta, bindings, results);
                        bindings.remove(v.as_ref());
                        r
                    }
                },
            }
        }
    }
}

/// Build the index probe pattern for an atom under current bindings.
fn probe_pattern(atom: &Atom, bindings: &HashMap<&str, Const>) -> Vec<Option<Const>> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => bindings.get(v.as_ref()).cloned(),
        })
        .collect()
}

/// For a negated atom with repeated free variables (`not p(Y, Y)`), check
/// that a candidate fact actually unifies with the atom.
fn consistent_with_repeats(atom: &Atom, fact: &[Const], bindings: &HashMap<&str, Const>) -> bool {
    let mut local: HashMap<&str, &Const> = HashMap::new();
    for (term, value) in atom.terms.iter().zip(fact) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if let Some(b) = bindings.get(v.as_ref()) {
                    if b != value {
                        return false;
                    }
                } else if let Some(prev) = local.insert(v.as_ref(), value) {
                    if prev != value {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn resolve(term: &Term, bindings: &HashMap<&str, Const>) -> Option<Const> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => bindings.get(v.as_ref()).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p).unwrap().run().unwrap()
    }

    fn run_naive(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p)
            .unwrap()
            .with_strategy(Strategy::Naive)
            .run()
            .unwrap()
    }

    #[test]
    fn transitive_closure() {
        let db = run("edge(a, b). edge(b, c). edge(c, d).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).");
        assert_eq!(db.relation("path").unwrap().len(), 6);
        assert!(db.contains("path", &[Const::sym("a"), Const::sym("d")]));
    }

    #[test]
    fn naive_equals_seminaive_on_closure() {
        let src = "edge(a, b). edge(b, c). edge(c, a).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- path(X, Z), path(Z, Y).";
        let a = run(src);
        let b = run_naive(src);
        assert_eq!(
            a.relation("path").unwrap().sorted(),
            b.relation("path").unwrap().sorted()
        );
        assert_eq!(a.relation("path").unwrap().len(), 9); // complete digraph on 3
    }

    #[test]
    fn stratified_negation_complement() {
        let db = run("node(a). node(b). node(c). edge(a, b).\
             reached(b).\
             unreachable(X) :- node(X), not reached(X).");
        let u = db.relation("unreachable").unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&[Const::sym("a")]));
        assert!(u.contains(&[Const::sym("c")]));
    }

    #[test]
    fn negation_with_free_variable_is_not_exists() {
        // q(X) :- p(X), not r(X, Y): succeed iff no Y at all.
        let db = run("p(a). p(b). r(a, z).\
             q(X) :- p(X), not r(X, Y).");
        let q = db.relation("q").unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.contains(&[Const::sym("b")]));
    }

    #[test]
    fn negation_with_repeated_free_variables() {
        // not r(Y, Y): refuted only by a diagonal fact.
        let db = run("p(a). r(x, y).\
             q(X) :- p(X), not r(Y, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 1);
        let db = run("p(a). r(x, x).\
             q(X) :- p(X), not r(Y, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 0);
    }

    #[test]
    fn comparisons_filter() {
        let db = run("n(1). n(2). n(3).\
             big(X) :- n(X), X >= 2.\
             pair(X, Y) :- n(X), n(Y), X < Y.");
        assert_eq!(db.relation("big").unwrap().len(), 2);
        assert_eq!(db.relation("pair").unwrap().len(), 3);
    }

    #[test]
    fn repeated_variable_in_positive_atom() {
        let db = run("e(a, a). e(a, b).\
             loop(X) :- e(X, X).");
        let l = db.relation("loop").unwrap();
        assert_eq!(l.len(), 1);
        assert!(l.contains(&[Const::sym("a")]));
    }

    #[test]
    fn zero_arity_predicates() {
        let db = run("go. done :- go.");
        assert!(db.contains("done", &[]));
    }

    #[test]
    fn same_generation() {
        let db = run("person(a). person(b). person(c). person(d). person(e).\
             par(a, c). par(b, c). par(c, e). par(d, e).\
             sg(X, X) :- person(X).\
             sg(X, Y) :- par(X, Z), par(Y, W), sg(Z, W).");
        let sg = db.relation("sg").unwrap();
        assert!(sg.contains(&[Const::sym("a"), Const::sym("b")]));
        assert!(sg.contains(&[Const::sym("c"), Const::sym("d")]));
        assert!(!sg.contains(&[Const::sym("a"), Const::sym("d")]));
    }

    #[test]
    fn multi_stratum_pipeline() {
        let db = run("e(a, b). e(b, c).\
             t(X, Y) :- e(X, Y).\
             t(X, Y) :- e(X, Z), t(Z, Y).\
             nt(X, Y) :- t(X, X1), t(Y1, Y), not t(X, Y).\
             ok(X) :- t(X, Y), not nt(X, Y).");
        // nt pairs: (b,b)? t = {ab,bc,ac}. Endpoints X in {a,b}, Y in {b,c}.
        // not t(X,Y): (b,b) only. So nt = {(b,b)}.
        assert_eq!(db.relation("nt").unwrap().len(), 1);
        assert!(db.contains("nt", &[Const::sym("b"), Const::sym("b")]));
    }

    #[test]
    fn fact_limit_guard() {
        let p = parse_program(
            "n(1). n(2). n(3). n(4). n(5).\
             p(A, B, C, D) :- n(A), n(B), n(C), n(D).",
        )
        .unwrap();
        let err = Engine::new(&p)
            .unwrap()
            .with_fact_limit(100)
            .run()
            .unwrap_err();
        assert!(matches!(err, DatalogError::FactLimitExceeded { .. }));
    }

    #[test]
    fn stats_are_populated() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let (_, stats) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        assert!(stats.iterations >= 2);
        assert!(stats.facts_added >= 5);
        assert!(stats.rule_applications > 0);
    }

    #[test]
    fn seminaive_does_less_work_than_naive() {
        // Long chain: naive re-derives everything every iteration.
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
        let p = parse_program(&src).unwrap();
        let (db_s, s) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        let (db_n, n) = Engine::new(&p)
            .unwrap()
            .with_strategy(Strategy::Naive)
            .run_with_stats()
            .unwrap();
        assert_eq!(
            db_s.relation("path").unwrap().sorted(),
            db_n.relation("path").unwrap().sorted()
        );
        assert!(
            s.facts_considered < n.facts_considered,
            "semi-naive {} vs naive {}",
            s.facts_considered,
            n.facts_considered
        );
    }

    #[test]
    fn empty_program_runs() {
        let db = run("");
        assert_eq!(db.fact_count(), 0);
    }

    #[test]
    fn rule_over_missing_relation_is_empty() {
        let db = run("p(X) :- q(X). q(X) :- r(X, X).");
        assert_eq!(db.relation("p").unwrap().len(), 0);
    }

    #[test]
    fn constants_in_rule_heads_and_bodies() {
        let db = run("color(car, red). color(bus, blue).\
             is_red(X) :- color(X, red).\
             flag(found) :- color(car, red).");
        assert!(db.contains("is_red", &[Const::sym("car")]));
        assert!(db.contains("flag", &[Const::sym("found")]));
    }
}
