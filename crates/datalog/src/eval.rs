//! Bottom-up evaluation: naive and semi-naive, stratum by stratum.
//!
//! Rule bodies are compiled once per stratum into slot-allocated join
//! plans ([`crate::plan`]) whose literal order is chosen greedily. The
//! semi-naive strategy additionally compiles, for each rule and each body
//! occurrence of a same-stratum predicate, a variant where that
//! occurrence draws from the delta of the previous iteration.
//!
//! Negated literals may contain variables that occur in no positive
//! literal textually before them; these are read as existentially
//! quantified *inside* the negation (`¬∃Y p(X, Y)`), which is the
//! convention the MultiLog reduction axioms (Figure 12 of the paper) rely
//! on. Stratification guarantees the negated relation is fully computed
//! before it is consulted.
//!
//! # Parallelism
//!
//! With [`Engine::with_threads`] above 1, each semi-naive iteration
//! partitions its rule variants across scoped worker threads evaluating
//! against an immutable snapshot of the database; the main thread merges
//! the derived facts in variant order. The merge order — and therefore
//! the final database — is deterministic: the sorted contents are
//! identical for every thread count. With 1 thread the engine evaluates
//! variants strictly sequentially, in which case facts derived early in
//! an iteration are already visible to later variants of the same
//! iteration (the historical behaviour).

use std::collections::HashSet;

use crate::clause::Clause;
use crate::fx::FxHashMap;
use crate::plan::{delta_positions, RulePlan, Scratch};
use crate::program::Program;
use crate::storage::{Database, Fact};
use crate::term::SymId;
use crate::{DatalogError, Result};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-derive everything each iteration; kept for validation/ablation.
    Naive,
    /// Delta-driven evaluation; the default.
    #[default]
    SemiNaive,
}

/// Counters describing an evaluation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations summed over all strata.
    pub iterations: usize,
    /// Number of rule-variant applications attempted.
    pub rule_applications: usize,
    /// Facts produced (including duplicates that were discarded).
    pub facts_considered: usize,
    /// Facts actually added to the database.
    pub facts_added: usize,
    /// The join order chosen for every compiled rule variant, as
    /// `head [(Δ@pos)] :- [textual body indices in execution order]`.
    pub join_orders: Vec<String>,
}

/// A bottom-up evaluator for one program.
pub struct Engine<'p> {
    program: &'p Program,
    strategy: Strategy,
    fact_limit: usize,
    threads: usize,
    parallel_threshold: usize,
    strata: Vec<Vec<String>>,
}

impl<'p> Engine<'p> {
    /// Create an engine, stratifying the program.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratifiable`] if negation occurs through
    /// recursion.
    pub fn new(program: &'p Program) -> Result<Self> {
        let strat = program.stratify()?;
        Ok(Engine {
            program,
            strategy: Strategy::SemiNaive,
            fact_limit: 10_000_000,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            parallel_threshold: 512,
            strata: strat.iter().map(<[String]>::to_vec).collect(),
        })
    }

    /// Select the evaluation strategy (default: semi-naive).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the guard limit on the number of derived facts.
    pub fn with_fact_limit(mut self, limit: usize) -> Self {
        self.fact_limit = limit;
        self
    }

    /// Set the number of worker threads (default: the machine's available
    /// parallelism). `1` evaluates strictly sequentially, preserving the
    /// historical execution order exactly.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the minimum number of input facts an iteration must consume
    /// before it is parallelised (default: 512). Iterations below the
    /// threshold run sequentially — thread spawn overhead dominates on
    /// tiny deltas. Tests force the parallel path with `0`.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Evaluate to fixpoint and return the full database.
    pub fn run(&self) -> Result<Database> {
        Ok(self.run_with_stats()?.0)
    }

    /// Evaluate only the predicates the given query predicates depend on
    /// — the practical counterpart of magic sets for ad hoc queries: the
    /// answers over the restricted database coincide with those over the
    /// full one, but unrelated relations are never materialized.
    pub fn run_for_query<'a>(
        &self,
        query_preds: impl IntoIterator<Item = &'a str>,
    ) -> Result<Database> {
        let needed = self.program.dependencies_of(query_preds);
        Ok(self.run_inner(Some(&needed))?.0)
    }

    /// Evaluate to fixpoint, also returning counters.
    pub fn run_with_stats(&self) -> Result<(Database, EvalStats)> {
        self.run_inner(None)
    }

    fn run_inner(&self, restrict: Option<&HashSet<String>>) -> Result<(Database, EvalStats)> {
        let mut db = Database::new();
        let mut stats = EvalStats::default();

        // Ensure every predicate has a (possibly empty) relation so that
        // negation over never-derived predicates works uniformly.
        for pred in self.program.predicates() {
            db.relation_mut(pred);
        }

        for stratum in &self.strata {
            let in_stratum: HashSet<SymId> = stratum.iter().map(|s| SymId::intern(s)).collect();
            // Rules whose head is in this stratum (and, when restricted,
            // in the query's dependency cone).
            let rules: Vec<&Clause> = self
                .program
                .clauses()
                .iter()
                .filter(|c| in_stratum.contains(&c.head.predicate))
                .filter(|c| restrict.is_none_or(|n| n.contains(c.head.predicate.as_str())))
                .collect();
            match self.strategy {
                Strategy::Naive => {
                    self.run_stratum_naive(&rules, &mut db, &mut stats)?;
                }
                Strategy::SemiNaive => {
                    self.run_stratum_seminaive(&rules, &in_stratum, &mut db, &mut stats)?;
                }
            }
        }
        Ok((db, stats))
    }

    fn run_stratum_naive(
        &self,
        rules: &[&Clause],
        db: &mut Database,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let plans = rules
            .iter()
            .map(|r| RulePlan::compile(r, None, db))
            .collect::<Result<Vec<_>>>()?;
        stats
            .join_orders
            .extend(plans.iter().map(|p| p.order_desc.clone()));
        let mut scratches: Vec<Scratch> = plans.iter().map(RulePlan::new_scratch).collect();
        let mut derived: Vec<Fact> = Vec::new();
        loop {
            stats.iterations += 1;
            let mut new_facts: Vec<(SymId, Fact)> = Vec::new();
            for (plan, scratch) in plans.iter().zip(&mut scratches) {
                stats.rule_applications += 1;
                derived.clear();
                plan.eval(db, None, scratch, &mut derived)?;
                stats.facts_considered += derived.len();
                for f in derived.drain(..) {
                    new_facts.push((plan.head_pred, f));
                }
            }
            let mut changed = false;
            for (pred, fact) in new_facts {
                if db.insert_id(pred, fact) {
                    stats.facts_added += 1;
                    changed = true;
                }
            }
            if db.fact_count() > self.fact_limit {
                return Err(DatalogError::FactLimitExceeded {
                    limit: self.fact_limit,
                });
            }
            if !changed {
                return Ok(());
            }
        }
    }

    fn run_stratum_seminaive(
        &self,
        rules: &[&Clause],
        in_stratum: &HashSet<SymId>,
        db: &mut Database,
        stats: &mut EvalStats,
    ) -> Result<()> {
        // Compile the base plans and, for each body occurrence of a
        // same-stratum predicate, a delta variant. Cardinality estimates
        // come from the database at stratum entry.
        let base = rules
            .iter()
            .map(|r| RulePlan::compile(r, None, db))
            .collect::<Result<Vec<_>>>()?;
        let variants = rules
            .iter()
            .flat_map(|r| {
                delta_positions(r, in_stratum)
                    .into_iter()
                    .map(|p| RulePlan::compile(r, Some(p), db))
            })
            .collect::<Result<Vec<_>>>()?;
        stats
            .join_orders
            .extend(base.iter().chain(&variants).map(|p| p.order_desc.clone()));
        let mut base_scratches: Vec<Scratch> = base.iter().map(RulePlan::new_scratch).collect();
        let mut variant_scratches: Vec<Scratch> =
            variants.iter().map(RulePlan::new_scratch).collect();

        // Iteration 0: apply every rule once against the current database
        // (covers facts and rules whose bodies only use lower strata).
        stats.iterations += 1;
        let round: Vec<(usize, Option<SymId>)> = (0..base.len()).map(|i| (i, None)).collect();
        let mut delta = self.apply_round(
            &base,
            &mut base_scratches,
            &round,
            &FxHashMap::default(),
            db.fact_count(),
            db,
            stats,
        )?;

        while !delta.is_empty() {
            stats.iterations += 1;
            if db.fact_count() > self.fact_limit {
                return Err(DatalogError::FactLimitExceeded {
                    limit: self.fact_limit,
                });
            }
            // Variants whose delta relation is non-empty this iteration.
            let round: Vec<(usize, Option<SymId>)> = variants
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    let d = p.delta_pred.expect("variant has a delta predicate");
                    delta.get(&d).is_some_and(|r| !r.is_empty())
                })
                .map(|(i, p)| (i, p.delta_pred))
                .collect();
            let input: usize = delta.values().map(Vec::len).sum();
            let next = self.apply_round(
                &variants,
                &mut variant_scratches,
                &round,
                &delta,
                input,
                db,
                stats,
            )?;
            delta = next;
        }
        Ok(())
    }

    /// Run one iteration's worth of rule variants (`round` indexes into
    /// `plans`), inserting derived facts into `db` and returning the next
    /// delta. Parallelises across worker threads when the configuration
    /// and the input size (`input_facts`) warrant it; the merge order is
    /// the variant order either way, so the resulting database contents
    /// do not depend on the thread count.
    #[allow(clippy::too_many_arguments)]
    fn apply_round(
        &self,
        plans: &[RulePlan],
        scratches: &mut [Scratch],
        round: &[(usize, Option<SymId>)],
        delta: &FxHashMap<SymId, Vec<Fact>>,
        input_facts: usize,
        db: &mut Database,
        stats: &mut EvalStats,
    ) -> Result<FxHashMap<SymId, Vec<Fact>>> {
        let mut next_delta: FxHashMap<SymId, Vec<Fact>> = FxHashMap::default();
        let parallel =
            self.threads > 1 && round.len() >= 2 && input_facts >= self.parallel_threshold;
        if parallel {
            // Workers evaluate against an immutable snapshot; the main
            // thread merges in variant order.
            let snapshot: &Database = db;
            let workers = self.threads.min(round.len());
            let mut results: Vec<(usize, Result<Vec<Fact>>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let mine: Vec<(usize, Option<SymId>)> =
                            round.iter().skip(w).step_by(workers).copied().collect();
                        scope.spawn(move || {
                            mine.into_iter()
                                .map(|(idx, dpred)| {
                                    let plan = &plans[idx];
                                    let drel = dpred.map(|d| delta[&d].as_slice());
                                    let mut scratch = plan.new_scratch();
                                    let mut out = Vec::new();
                                    let res = plan
                                        .eval(snapshot, drel, &mut scratch, &mut out)
                                        .map(|()| out);
                                    (idx, res)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("evaluation worker panicked"))
                    .collect()
            });
            results.sort_by_key(|&(idx, _)| idx);
            for (idx, res) in results {
                stats.rule_applications += 1;
                let derived = res?;
                stats.facts_considered += derived.len();
                let head = plans[idx].head_pred;
                for f in derived {
                    self.insert_derived(head, f, db, stats, &mut next_delta);
                }
            }
        } else {
            let mut derived: Vec<Fact> = Vec::new();
            for &(idx, dpred) in round {
                stats.rule_applications += 1;
                let drel = dpred.map(|d| delta[&d].as_slice());
                derived.clear();
                plans[idx].eval(db, drel, &mut scratches[idx], &mut derived)?;
                stats.facts_considered += derived.len();
                let head = plans[idx].head_pred;
                for f in derived.drain(..) {
                    self.insert_derived(head, f, db, stats, &mut next_delta);
                }
            }
        }
        Ok(next_delta)
    }

    fn insert_derived(
        &self,
        head: SymId,
        fact: Fact,
        db: &mut Database,
        stats: &mut EvalStats,
        next_delta: &mut FxHashMap<SymId, Vec<Fact>>,
    ) {
        // `insert_if_new_id` copies the fact only when it is genuinely
        // new; duplicates (the common case near fixpoint) allocate
        // nothing, and the owned fact moves into the delta for free.
        // A fact can be new at most once per iteration, so the delta
        // list needs no dedup of its own.
        if db.insert_if_new_id(head, &fact) {
            stats.facts_added += 1;
            next_delta.entry(head).or_default().push(fact);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::term::Const;

    fn run(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p).unwrap().run().unwrap()
    }

    fn run_naive(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p)
            .unwrap()
            .with_strategy(Strategy::Naive)
            .run()
            .unwrap()
    }

    #[test]
    fn transitive_closure() {
        let db = run("edge(a, b). edge(b, c). edge(c, d).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).");
        assert_eq!(db.relation("path").unwrap().len(), 6);
        assert!(db.contains("path", &[Const::sym("a"), Const::sym("d")]));
    }

    #[test]
    fn naive_equals_seminaive_on_closure() {
        let src = "edge(a, b). edge(b, c). edge(c, a).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- path(X, Z), path(Z, Y).";
        let a = run(src);
        let b = run_naive(src);
        assert_eq!(
            a.relation("path").unwrap().sorted(),
            b.relation("path").unwrap().sorted()
        );
        assert_eq!(a.relation("path").unwrap().len(), 9); // complete digraph on 3
    }

    #[test]
    fn stratified_negation_complement() {
        let db = run("node(a). node(b). node(c). edge(a, b).\
             reached(b).\
             unreachable(X) :- node(X), not reached(X).");
        let u = db.relation("unreachable").unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&[Const::sym("a")]));
        assert!(u.contains(&[Const::sym("c")]));
    }

    #[test]
    fn negation_with_free_variable_is_not_exists() {
        // q(X) :- p(X), not r(X, Y): succeed iff no Y at all.
        let db = run("p(a). p(b). r(a, z).\
             q(X) :- p(X), not r(X, Y).");
        let q = db.relation("q").unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.contains(&[Const::sym("b")]));
    }

    #[test]
    fn negation_with_repeated_free_variables() {
        // not r(Y, Y): refuted only by a diagonal fact.
        let db = run("p(a). r(x, y).\
             q(X) :- p(X), not r(Y, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 1);
        let db = run("p(a). r(x, x).\
             q(X) :- p(X), not r(Y, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 0);
    }

    #[test]
    fn comparisons_filter() {
        let db = run("n(1). n(2). n(3).\
             big(X) :- n(X), X >= 2.\
             pair(X, Y) :- n(X), n(Y), X < Y.");
        assert_eq!(db.relation("big").unwrap().len(), 2);
        assert_eq!(db.relation("pair").unwrap().len(), 3);
    }

    #[test]
    fn repeated_variable_in_positive_atom() {
        let db = run("e(a, a). e(a, b).\
             loop(X) :- e(X, X).");
        let l = db.relation("loop").unwrap();
        assert_eq!(l.len(), 1);
        assert!(l.contains(&[Const::sym("a")]));
    }

    #[test]
    fn zero_arity_predicates() {
        let db = run("go. done :- go.");
        assert!(db.contains("done", &[]));
    }

    #[test]
    fn same_generation() {
        let db = run("person(a). person(b). person(c). person(d). person(e).\
             par(a, c). par(b, c). par(c, e). par(d, e).\
             sg(X, X) :- person(X).\
             sg(X, Y) :- par(X, Z), par(Y, W), sg(Z, W).");
        let sg = db.relation("sg").unwrap();
        assert!(sg.contains(&[Const::sym("a"), Const::sym("b")]));
        assert!(sg.contains(&[Const::sym("c"), Const::sym("d")]));
        assert!(!sg.contains(&[Const::sym("a"), Const::sym("d")]));
    }

    #[test]
    fn multi_stratum_pipeline() {
        let db = run("e(a, b). e(b, c).\
             t(X, Y) :- e(X, Y).\
             t(X, Y) :- e(X, Z), t(Z, Y).\
             nt(X, Y) :- t(X, X1), t(Y1, Y), not t(X, Y).\
             ok(X) :- t(X, Y), not nt(X, Y).");
        // nt pairs: (b,b)? t = {ab,bc,ac}. Endpoints X in {a,b}, Y in {b,c}.
        // not t(X,Y): (b,b) only. So nt = {(b,b)}.
        assert_eq!(db.relation("nt").unwrap().len(), 1);
        assert!(db.contains("nt", &[Const::sym("b"), Const::sym("b")]));
    }

    #[test]
    fn fact_limit_guard() {
        let p = parse_program(
            "n(1). n(2). n(3). n(4). n(5).\
             p(A, B, C, D) :- n(A), n(B), n(C), n(D).",
        )
        .unwrap();
        let err = Engine::new(&p)
            .unwrap()
            .with_fact_limit(100)
            .run()
            .unwrap_err();
        assert!(matches!(err, DatalogError::FactLimitExceeded { .. }));
    }

    #[test]
    fn stats_are_populated() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let (_, stats) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        assert!(stats.iterations >= 2);
        assert!(stats.facts_added >= 5);
        assert!(stats.rule_applications > 0);
        assert!(!stats.join_orders.is_empty());
    }

    #[test]
    fn seminaive_does_less_work_than_naive() {
        // Long chain: naive re-derives everything every iteration.
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
        let p = parse_program(&src).unwrap();
        let (db_s, s) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        let (db_n, n) = Engine::new(&p)
            .unwrap()
            .with_strategy(Strategy::Naive)
            .run_with_stats()
            .unwrap();
        assert_eq!(
            db_s.relation("path").unwrap().sorted(),
            db_n.relation("path").unwrap().sorted()
        );
        assert!(
            s.facts_considered < n.facts_considered,
            "semi-naive {} vs naive {}",
            s.facts_considered,
            n.facts_considered
        );
    }

    #[test]
    fn empty_program_runs() {
        let db = run("");
        assert_eq!(db.fact_count(), 0);
    }

    #[test]
    fn rule_over_missing_relation_is_empty() {
        let db = run("p(X) :- q(X). q(X) :- r(X, X).");
        assert_eq!(db.relation("p").unwrap().len(), 0);
    }

    #[test]
    fn constants_in_rule_heads_and_bodies() {
        let db = run("color(car, red). color(bus, blue).\
             is_red(X) :- color(X, red).\
             flag(found) :- color(car, red).");
        assert!(db.contains("is_red", &[Const::sym("car")]));
        assert!(db.contains("flag", &[Const::sym("found")]));
    }

    #[test]
    fn join_orders_mention_delta_variants() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let (_, stats) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        assert!(
            stats.join_orders.iter().any(|o| o.contains("Δ")),
            "orders: {:?}",
            stats.join_orders
        );
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let mut src = String::new();
        for i in 0..40 {
            src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
        }
        src.push_str("edge(n40, n0).\n"); // cycle
        src.push_str(
            "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).\
             looped(X) :- path(X, X).\
             unlooped(X) :- path(X, Y), not looped(X).",
        );
        let p = parse_program(&src).unwrap();
        let seq = Engine::new(&p).unwrap().with_threads(1).run().unwrap();
        for threads in [2, 4] {
            let par = Engine::new(&p)
                .unwrap()
                .with_threads(threads)
                .with_parallel_threshold(0)
                .run()
                .unwrap();
            assert_eq!(seq.fact_count(), par.fact_count(), "threads={threads}");
            for (pred, rel) in seq.relations() {
                assert_eq!(
                    rel.sorted(),
                    par.relation(pred).unwrap().sorted(),
                    "relation {pred} differs with threads={threads}"
                );
            }
        }
    }
}
