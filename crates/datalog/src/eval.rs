//! Bottom-up evaluation: naive and semi-naive, stratum by stratum.
//!
//! Rule bodies are compiled once per stratum into slot-allocated join
//! plans ([`crate::plan`]) whose literal order is chosen greedily. The
//! semi-naive strategy additionally compiles, for each rule and each body
//! occurrence of a same-stratum predicate, a variant where that
//! occurrence draws from the delta of the previous iteration.
//!
//! Negated literals may contain variables that occur in no positive
//! literal textually before them; these are read as existentially
//! quantified *inside* the negation (`¬∃Y p(X, Y)`), which is the
//! convention the MultiLog reduction axioms (Figure 12 of the paper) rely
//! on. Stratification guarantees the negated relation is fully computed
//! before it is consulted.
//!
//! # Parallelism
//!
//! With [`Engine::with_threads`] above 1, each semi-naive iteration
//! partitions its rule variants across scoped worker threads evaluating
//! against an immutable snapshot of the database; the main thread merges
//! the derived facts in variant order. The merge order — and therefore
//! the final database — is deterministic: the sorted contents are
//! identical for every thread count. With 1 thread the engine evaluates
//! variants strictly sequentially, in which case facts derived early in
//! an iteration are already visible to later variants of the same
//! iteration (the historical behaviour).

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::algo;
use crate::atom::{Atom, Literal};
use crate::clause::{AggFunc, Clause};
use crate::fx::FxHashMap;
use crate::guard::{CancelToken, EvalGuard};
use crate::magic;
use crate::plan::{delta_positions, RulePlan, Scratch};
use crate::program::Program;
use crate::query::{run_query, QueryAnswer};
use crate::storage::{key_of, Database, Fact, FactBuf, Relation};
use crate::term::{Const, SymId, Term};
use crate::trace::{TraceEvent, TraceSink};
use crate::{DatalogError, Result};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-derive everything each iteration; kept for validation/ablation.
    Naive,
    /// Delta-driven evaluation; the default.
    #[default]
    SemiNaive,
}

/// Which compiled-plan executor runs rule bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Executor {
    /// Columnar row-id batch execution — merge joins over the per-column
    /// sorted indexes with a batched hash-join fallback; the default.
    #[default]
    Batched,
    /// The retained tuple-at-a-time reference executor: the semantics
    /// oracle the batched path is differentially tested against, and an
    /// escape hatch for debugging.
    Tuple,
}

/// Run `plan` with the selected executor. Both executors derive the same
/// set of head tuples; only the order of `out` differs.
#[inline]
fn eval_plan(
    executor: Executor,
    plan: &RulePlan,
    db: &Database,
    delta: Option<&FactBuf>,
    scratch: &mut Scratch,
    out: &mut FactBuf,
    guard: &EvalGuard,
) -> Result<()> {
    match executor {
        Executor::Batched => plan.eval(db, delta, scratch, out, guard),
        Executor::Tuple => plan.eval_reference(db, delta, scratch, out, guard),
    }
}

/// Per-rule counters, aggregated over every variant and application of
/// one source rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Rendering of the source rule.
    pub rule: String,
    /// Zero-based stratum the rule's head belongs to.
    pub stratum: usize,
    /// Rule-variant applications attempted.
    pub applications: usize,
    /// Head tuples produced, including duplicates.
    pub facts_derived: usize,
    /// Tuples genuinely new to the database.
    pub facts_added: usize,
    /// Derived tuples discarded as already present.
    pub dedup_hits: usize,
    /// Rows enumerated from scans (index probes and delta sweeps) while
    /// evaluating this rule.
    pub join_probes: u64,
    /// Wall time spent in this rule's applications, in nanoseconds.
    pub wall_ns: u64,
}

/// Per-stratum counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StratumStats {
    /// Zero-based stratum index.
    pub stratum: usize,
    /// Predicates defined in the stratum.
    pub predicates: Vec<String>,
    /// Fixpoint iterations the stratum ran.
    pub iterations: usize,
    /// Facts the stratum added.
    pub facts_added: usize,
    /// Wall time of the stratum, in nanoseconds.
    pub wall_ns: u64,
}

/// How a goal-directed run ([`Engine::run_for_goal`]) pruned the
/// fixpoint, for observing demand effectiveness in `--stats` output and
/// benchmarks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// `"magic"` when the magic-sets rewrite was applied, `"cone"` when
    /// the goal bound no arguments (or no sound rewrite existed) and
    /// evaluation fell back to dependency-cone restriction.
    pub strategy: &'static str,
    /// Size of the goal's plain dependency cone (the predicates a
    /// cone-restricted run would materialize in full).
    pub cone_predicates: usize,
    /// Number of adorned predicate variants in the rewritten program —
    /// the *adorned* cone size (0 under the cone fallback).
    pub adorned_predicates: usize,
    /// Tuples held by the generated magic (demand) predicates.
    pub magic_facts: usize,
    /// Total facts the goal-directed run materialized; compare against
    /// the full fixpoint's fact count to see the demand win.
    pub facts_materialized: usize,
    /// Rules (and machinery clauses) the caller removed from the
    /// program before this run, e.g. by lattice-flow demand pruning.
    /// Always 0 for runs over an unpruned program.
    pub pruned_rules: usize,
}

/// Counters describing an evaluation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations summed over all strata.
    pub iterations: usize,
    /// Number of rule-variant applications attempted.
    pub rule_applications: usize,
    /// Facts produced (including duplicates that were discarded).
    pub facts_considered: usize,
    /// Facts actually added to the database.
    pub facts_added: usize,
    /// The join order chosen for every compiled rule variant, as
    /// `head [(Δ@pos)] :- [textual body indices in execution order]`.
    pub join_orders: Vec<String>,
    /// Counters per source rule, in program order grouped by stratum.
    pub per_rule: Vec<RuleStats>,
    /// Counters per stratum, in evaluation order.
    pub per_stratum: Vec<StratumStats>,
    /// Demand-pruning counters, present only for goal-directed runs.
    pub demand: Option<DemandStats>,
}

impl EvalStats {
    /// Render the per-stratum and per-rule counters as a human-readable
    /// table (used by the CLI's `--stats` flag).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluation: {} iterations, {} applications, {} derived, {} added",
            self.iterations, self.rule_applications, self.facts_considered, self.facts_added
        );
        if let Some(d) = &self.demand {
            let _ = writeln!(
                out,
                "demand({}): cone={} adorned={} magic_facts={} materialized={} pruned={}",
                d.strategy,
                d.cone_predicates,
                d.adorned_predicates,
                d.magic_facts,
                d.facts_materialized,
                d.pruned_rules
            );
        }
        for s in &self.per_stratum {
            let _ = writeln!(
                out,
                "stratum {}: iterations={} facts_added={} wall_ms={:.3} [{}]",
                s.stratum,
                s.iterations,
                s.facts_added,
                s.wall_ns as f64 / 1e6,
                s.predicates.join(", ")
            );
        }
        for r in &self.per_rule {
            let _ = writeln!(
                out,
                "rule (stratum {}): {}\n  apps={} derived={} added={} dedup_hits={} \
                 join_probes={} wall_ms={:.3}",
                r.stratum,
                r.rule,
                r.applications,
                r.facts_derived,
                r.facts_added,
                r.dedup_hits,
                r.join_probes,
                r.wall_ns as f64 / 1e6,
            );
        }
        out
    }
}

/// A bottom-up evaluator for one program.
pub struct Engine<'p> {
    program: &'p Program,
    strategy: Strategy,
    fact_limit: usize,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    trace: Option<Arc<dyn TraceSink>>,
    threads: usize,
    parallel_threshold: usize,
    executor: Executor,
    strata: Vec<Vec<String>>,
}

impl<'p> Engine<'p> {
    /// Create an engine, stratifying the program.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratifiable`] if negation occurs through
    /// recursion.
    pub fn new(program: &'p Program) -> Result<Self> {
        let strat = program.stratify()?;
        Ok(Engine {
            program,
            strategy: Strategy::SemiNaive,
            fact_limit: 10_000_000,
            deadline: None,
            cancel: None,
            trace: None,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            parallel_threshold: 512,
            executor: Executor::default(),
            strata: strat.iter().map(<[String]>::to_vec).collect(),
        })
    }

    /// Select the evaluation strategy (default: semi-naive).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the guard budget on the number of derived facts. Checked both
    /// between iterations and — flushed in batches — inside the join
    /// inner loop, so one cross-product iteration cannot overrun the
    /// budget unbounded. Trips as [`DatalogError::BudgetExceeded`].
    pub fn with_fact_limit(mut self, limit: usize) -> Self {
        self.fact_limit = limit;
        self
    }

    /// Set a wall-clock deadline for the whole run, checked every few
    /// thousand join steps. Trips as [`DatalogError::DeadlineExceeded`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cooperative cancellation token, shared with every
    /// parallel worker. Cancelling it makes the run return
    /// [`DatalogError::Cancelled`] at the next guard check.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a trace sink receiving stratum, iteration, rule, and
    /// guard-trip events.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    fn emit(&self, event: &TraceEvent<'_>) {
        if let Some(t) = &self.trace {
            t.event(event);
        }
    }

    /// Set the number of worker threads (default: the machine's available
    /// parallelism). `1` evaluates strictly sequentially, preserving the
    /// historical execution order exactly.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the minimum number of input facts an iteration must consume
    /// before it is parallelised (default: 512). Iterations below the
    /// threshold run sequentially — thread spawn overhead dominates on
    /// tiny deltas. Tests force the parallel path with `0`.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Select the plan executor (default: [`Executor::Batched`]). The
    /// tuple executor exists for differential testing and debugging;
    /// both produce identical databases.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Evaluate to fixpoint and return the full database.
    pub fn run(&self) -> Result<Database> {
        Ok(self.run_with_stats()?.0)
    }

    /// Evaluate only the predicates the given query predicates depend on
    /// — the practical counterpart of magic sets for ad hoc queries: the
    /// answers over the restricted database coincide with those over the
    /// full one, but unrelated relations are never materialized.
    pub fn run_for_query<'a>(
        &self,
        query_preds: impl IntoIterator<Item = &'a str>,
    ) -> Result<Database> {
        let needed = self.program.dependencies_of(query_preds);
        Ok(self.run_inner(Some(&needed), &[])?.0)
    }

    /// Evaluate to fixpoint, also returning counters.
    pub fn run_with_stats(&self) -> Result<(Database, EvalStats)> {
        self.run_inner(None, &[])
    }

    /// Answer a partially-bound goal by evaluating only the sub-fixpoint
    /// it demands.
    ///
    /// When some argument of a positive goal literal is bound, the
    /// program is rewritten with the magic-sets transformation
    /// ([`crate::magic`]), restratified, and evaluated with this engine's
    /// configuration (strategy, guards, threads); only tuples reachable
    /// from the goal's constants are materialized. When no argument is
    /// bound — or no sound rewrite exists — evaluation falls back to
    /// dependency-cone restriction (as [`Engine::run_for_query`]) and the
    /// goal is answered post hoc with [`run_query`].
    ///
    /// Either way the answers equal `run_query` over the full fixpoint,
    /// and [`EvalStats::demand`] records which strategy ran and how much
    /// it materialized.
    ///
    /// # Errors
    ///
    /// Guard trips ([`DatalogError::BudgetExceeded`],
    /// [`DatalogError::DeadlineExceeded`], [`DatalogError::Cancelled`])
    /// propagate exactly as they would from a full run; an unsafe goal
    /// fails as in [`run_query`].
    pub fn run_for_goal(&self, goal: &[Literal]) -> Result<(QueryAnswer, EvalStats)> {
        let seeds: Vec<&str> = goal
            .iter()
            .filter_map(Literal::atom)
            .map(|a| a.predicate.as_str())
            .collect();
        let needed = self.program.dependencies_of(seeds);
        if let Some(m) = magic::rewrite(self.program, goal) {
            if let Ok(engine) = Engine::new(&m.program) {
                let mut engine = engine
                    .with_strategy(self.strategy)
                    .with_fact_limit(self.fact_limit)
                    .with_threads(self.threads)
                    .with_parallel_threshold(self.parallel_threshold)
                    .with_executor(self.executor);
                if let Some(d) = self.deadline {
                    engine = engine.with_deadline(d);
                }
                if let Some(c) = self.cancel.clone() {
                    engine = engine.with_cancel_token(c);
                }
                if let Some(t) = self.trace.clone() {
                    engine = engine.with_trace(t);
                }
                let (db, mut stats) = engine.run_inner(None, &[])?;
                stats.demand = Some(DemandStats {
                    strategy: "magic",
                    cone_predicates: needed.len(),
                    adorned_predicates: m.adorned_predicates,
                    magic_facts: m
                        .magic_predicates
                        .iter()
                        .filter_map(|p| db.relation(p))
                        .map(crate::storage::Relation::len)
                        .sum(),
                    facts_materialized: db.fact_count(),
                    pruned_rules: 0,
                });
                return Ok((m.answers(&db), stats));
            }
        }
        let (mut db, mut stats) = self.run_inner(Some(&needed), goal)?;
        // Algo calls appearing only in the goal have no stratum in the
        // program; materialize them now, over the finished cone fixpoint
        // (their input is complete by construction).
        let guard = EvalGuard::new(self.deadline, self.fact_limit, self.cancel.clone());
        for l in goal {
            let Some(a) = l.atom() else { continue };
            let pred = a.predicate.as_str();
            let Some((name, input)) = algo::parse_call(pred) else {
                continue;
            };
            if db.relation(pred).is_some() {
                continue; // already materialized in its program stratum
            }
            let patterns = algo::call_patterns(self.program, goal, a.predicate);
            let out = algo::materialize(name, db.relation(input), a.arity(), &patterns, &guard)?;
            guard.begin_round(db.fact_count());
            for fact in out.iter() {
                db.insert_id(a.predicate, fact);
            }
            guard.check_db(db.fact_count())?;
        }
        let answer = run_query(&db, goal)?;
        stats.demand = Some(DemandStats {
            strategy: "cone",
            cone_predicates: needed.len(),
            adorned_predicates: 0,
            magic_facts: 0,
            facts_materialized: db.fact_count(),
            pruned_rules: 0,
        });
        Ok((answer, stats))
    }

    fn run_inner(
        &self,
        restrict: Option<&HashSet<String>>,
        extra: &[Literal],
    ) -> Result<(Database, EvalStats)> {
        let mut db = Database::new();
        let mut stats = EvalStats::default();
        let guard = EvalGuard::new(self.deadline, self.fact_limit, self.cancel.clone());

        // Ensure every evaluated predicate has a (possibly empty)
        // relation so that negation over never-derived predicates works
        // uniformly. Under restriction only the cone's relations are
        // created — out-of-cone predicates must not leak empty relations
        // into the returned database; join plans treat a missing relation
        // as empty, so negation over one still behaves correctly.
        for pred in self.program.predicates() {
            if restrict.is_none_or(|n| n.contains(pred)) {
                db.relation_mut(pred);
            }
        }

        for (stratum_idx, stratum) in self.strata.iter().enumerate() {
            let in_stratum: HashSet<SymId> = stratum.iter().map(|s| SymId::intern(s)).collect();
            // Rules whose head is in this stratum (and, when restricted,
            // in the query's dependency cone). Aggregate clauses are
            // split off: their bodies live strictly below this stratum,
            // so they are folded once, before the fixpoint, and their
            // results behave like EDB facts for the stratum's rules.
            let (agg_rules, rules): (Vec<&Clause>, Vec<&Clause>) = self
                .program
                .clauses()
                .iter()
                .filter(|c| in_stratum.contains(&c.head.predicate))
                .filter(|c| restrict.is_none_or(|n| n.contains(c.head.predicate.as_str())))
                .partition(|c| c.agg.is_some());
            self.emit(&TraceEvent::StratumStart {
                stratum: stratum_idx,
                predicates: stratum,
            });
            let started = Instant::now();
            let iters_before = stats.iterations;
            let added_before = stats.facts_added;
            // Native algorithm operators first (their inputs are in lower
            // strata), then aggregate folds (ditto), then the fixpoint —
            // which sees both as already-materialized relations.
            let mut result =
                self.materialize_algos(stratum, restrict, extra, &mut db, &mut stats, &guard);
            if result.is_ok() {
                result =
                    self.apply_aggregates(&agg_rules, stratum_idx, &mut db, &mut stats, &guard);
            }
            if result.is_ok() {
                result = match self.strategy {
                    Strategy::Naive => {
                        self.run_stratum_naive(&rules, stratum_idx, &mut db, &mut stats, &guard)
                    }
                    Strategy::SemiNaive => self.run_stratum_seminaive(
                        &rules,
                        &in_stratum,
                        stratum_idx,
                        &mut db,
                        &mut stats,
                        &guard,
                    ),
                };
            }
            let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stats.per_stratum.push(StratumStats {
                stratum: stratum_idx,
                predicates: stratum.clone(),
                iterations: stats.iterations - iters_before,
                facts_added: stats.facts_added - added_before,
                wall_ns,
            });
            if let Err(err) = result {
                if matches!(
                    err,
                    DatalogError::BudgetExceeded { .. }
                        | DatalogError::DeadlineExceeded { .. }
                        | DatalogError::Cancelled
                ) {
                    self.emit(&TraceEvent::GuardTrip { error: &err });
                }
                return Err(err);
            }
            self.emit(&TraceEvent::StratumEnd {
                stratum: stratum_idx,
                iterations: stats.iterations - iters_before,
                facts_added: stats.facts_added - added_before,
                wall_ns,
            });
        }
        Ok((db, stats))
    }

    /// Materialize every `@algo(input)` call predicate assigned to this
    /// stratum by running its registered operator over the (complete)
    /// input relation. The output behaves like EDB facts for the
    /// stratum's rules: the semi-naive base iteration sees it in full.
    fn materialize_algos(
        &self,
        stratum: &[String],
        restrict: Option<&HashSet<String>>,
        extra: &[Literal],
        db: &mut Database,
        stats: &mut EvalStats,
        guard: &EvalGuard,
    ) -> Result<()> {
        for pred in stratum {
            let Some((name, input)) = algo::parse_call(pred) else {
                continue;
            };
            if restrict.is_some_and(|n| !n.contains(pred)) {
                continue;
            }
            let pred_sym = SymId::intern(pred);
            let patterns = algo::call_patterns(self.program, extra, pred_sym);
            let Some(call_arity) = patterns.first().map(Vec::len) else {
                continue; // no call site demands this predicate
            };
            let out = algo::materialize(name, db.relation(input), call_arity, &patterns, guard)?;
            guard.begin_round(db.fact_count());
            stats
                .join_orders
                .push(format!("{pred} :- [native @{name} over {input}]"));
            stats.facts_considered += out.len();
            for fact in out.iter() {
                if db.insert_id(pred_sym, fact) {
                    stats.facts_added += 1;
                }
            }
            guard.check_db(db.fact_count())?;
        }
        Ok(())
    }

    /// Evaluate the stratum's aggregate clauses: for each, enumerate the
    /// body's *distinct witness bindings* (its bound variables — positive
    /// occurrences and arithmetic targets; negation-only variables are
    /// existential), group them by the non-aggregated head positions, and
    /// fold the aggregate function over each group. Distinct-witness bag
    /// semantics mean two tuples differing only in a non-grouped column
    /// still count separately — which is what makes polyinstantiated
    /// m-atoms aggregate correctly after the MultiLog reduction.
    fn apply_aggregates(
        &self,
        aggs: &[&Clause],
        stratum_idx: usize,
        db: &mut Database,
        stats: &mut EvalStats,
        guard: &EvalGuard,
    ) -> Result<()> {
        enum Acc {
            Int(i64),
            Best(Const),
        }
        for c in aggs {
            let Some(agg) = c.agg else {
                return Err(DatalogError::Internal {
                    detail: "non-aggregate clause reached the aggregate pass".into(),
                });
            };
            let agg_err = |message: String| DatalogError::AggregateFailure {
                clause: c.to_string(),
                message,
            };
            // Bound body variables in first-occurrence order: the
            // projection whose distinct rows are the witnesses.
            let mut seen: HashSet<&str> = HashSet::new();
            let mut wvars: Vec<&str> = Vec::new();
            for l in &c.body {
                match l {
                    Literal::Pos(a) => {
                        for v in a.variables() {
                            if seen.insert(v) {
                                wvars.push(v);
                            }
                        }
                    }
                    Literal::Arith { target, .. } => {
                        if let Some(v) = target.as_var() {
                            if seen.insert(v) {
                                wvars.push(v);
                            }
                        }
                    }
                    Literal::Neg(_) | Literal::Cmp { .. } => {}
                }
            }
            let witness = Clause::new(
                Atom::new("__agg_witness", wvars.iter().map(Term::var).collect()),
                c.body.clone(),
            );
            let plan = RulePlan::compile(&witness, None, db)?;
            for &(p, col) in &plan.index_needs {
                db.ensure_index_id(p, col);
            }
            guard.begin_round(db.fact_count());
            stats.rule_applications += 1;
            let started = Instant::now();
            let mut scratch = plan.new_scratch();
            let mut out = FactBuf::default();
            eval_plan(
                self.executor,
                &plan,
                db,
                None,
                &mut scratch,
                &mut out,
                guard,
            )?;
            let var_ix: FxHashMap<&str, usize> =
                wvars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let value_at = |row: &[Const], t: &Term| -> Result<Const> {
                if let Some(v) = t.as_var() {
                    var_ix
                        .get(v)
                        .map(|&i| row[i])
                        .ok_or_else(|| DatalogError::Internal {
                            detail: format!("aggregate head variable `{v}` not bound by the body"),
                        })
                } else {
                    t.as_const().copied().ok_or_else(|| DatalogError::Internal {
                        detail: "aggregate head term neither variable nor constant".into(),
                    })
                }
            };
            let mut distinct = Relation::new();
            let mut groups: FxHashMap<Vec<Const>, Acc> = FxHashMap::default();
            for row in out.rows() {
                if !distinct.insert(Fact::from(row)) {
                    continue;
                }
                let value = value_at(row, &c.head.terms[agg.position])?;
                let mut key: Vec<Const> = Vec::with_capacity(c.head.terms.len().saturating_sub(1));
                for (i, t) in c.head.terms.iter().enumerate() {
                    if i != agg.position {
                        key.push(value_at(row, t)?);
                    }
                }
                match groups.entry(key) {
                    Entry::Vacant(e) => {
                        e.insert(match agg.func {
                            AggFunc::Count => Acc::Int(1),
                            AggFunc::Sum => Acc::Int(value.as_int().ok_or_else(|| {
                                agg_err(format!("sum over non-integer `{value}`"))
                            })?),
                            AggFunc::Min | AggFunc::Max => Acc::Best(value),
                        });
                    }
                    Entry::Occupied(mut e) => match (e.get_mut(), agg.func) {
                        (Acc::Int(n), AggFunc::Count) => {
                            *n = n
                                .checked_add(1)
                                .ok_or_else(|| agg_err("count overflowed i64".into()))?;
                        }
                        (Acc::Int(n), AggFunc::Sum) => {
                            let v = value.as_int().ok_or_else(|| {
                                agg_err(format!("sum over non-integer `{value}`"))
                            })?;
                            *n = n
                                .checked_add(v)
                                .ok_or_else(|| agg_err("sum overflowed i64".into()))?;
                        }
                        (Acc::Best(b), AggFunc::Min | AggFunc::Max) => {
                            let ord = value.try_cmp(b).ok_or_else(|| {
                                agg_err(format!("cannot order `{value}` against `{b}`"))
                            })?;
                            let better = match agg.func {
                                AggFunc::Min => ord == Ordering::Less,
                                _ => ord == Ordering::Greater,
                            };
                            if better {
                                *b = value;
                            }
                        }
                        _ => {
                            return Err(DatalogError::Internal {
                                detail: "aggregate accumulator kind mismatch".into(),
                            });
                        }
                    },
                }
            }
            // Deterministic emission: groups sorted by the storage key
            // order, independent of executor and thread count.
            let mut keyed: Vec<(Vec<Const>, Const)> = groups
                .into_iter()
                .map(|(k, acc)| {
                    let v = match acc {
                        Acc::Int(n) => Const::int(n),
                        Acc::Best(b) => b,
                    };
                    (k, v)
                })
                .collect();
            keyed.sort_by_key(|(k, _)| k.iter().map(|&c| key_of(c)).collect::<Vec<u128>>());
            let derived = keyed.len();
            let mut added = 0usize;
            let mut fact: Vec<Const> = Vec::with_capacity(c.head.terms.len());
            for (key, v) in keyed {
                fact.clear();
                let mut ki = key.into_iter();
                for i in 0..c.head.terms.len() {
                    if i == agg.position {
                        fact.push(v);
                    } else {
                        fact.push(ki.next().ok_or_else(|| DatalogError::Internal {
                            detail: "aggregate group key shorter than head".into(),
                        })?);
                    }
                }
                if db.insert_if_new_id(c.head.predicate, &fact) {
                    added += 1;
                }
            }
            guard.check_db(db.fact_count())?;
            stats.facts_considered += derived;
            stats.facts_added += added;
            stats.join_orders.push(plan.order_desc.clone());
            stats.per_rule.push(RuleStats {
                rule: c.to_string(),
                stratum: stratum_idx,
                applications: 1,
                facts_derived: derived,
                facts_added: added,
                dedup_hits: derived - added,
                join_probes: scratch.take_probes(),
                wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
        }
        Ok(())
    }

    fn run_stratum_naive(
        &self,
        rules: &[&Clause],
        stratum_idx: usize,
        db: &mut Database,
        stats: &mut EvalStats,
        guard: &EvalGuard,
    ) -> Result<()> {
        let plans = rules
            .iter()
            .map(|r| RulePlan::compile(r, None, db))
            .collect::<Result<Vec<_>>>()?;
        stats
            .join_orders
            .extend(plans.iter().map(|p| p.order_desc.clone()));
        let rule_base = stats.per_rule.len();
        stats.per_rule.extend(rules.iter().map(|r| RuleStats {
            rule: r.to_string(),
            stratum: stratum_idx,
            ..RuleStats::default()
        }));
        let mut scratches: Vec<Scratch> = plans.iter().map(RulePlan::new_scratch).collect();
        let mut derived = FactBuf::default();
        loop {
            stats.iterations += 1;
            for plan in &plans {
                for &(p, c) in &plan.index_needs {
                    db.ensure_index_id(p, c);
                }
            }
            guard.begin_round(db.fact_count());
            let mut new_facts: Vec<(usize, SymId, Fact)> = Vec::new();
            for (i, (plan, scratch)) in plans.iter().zip(&mut scratches).enumerate() {
                stats.rule_applications += 1;
                derived.clear();
                let started = Instant::now();
                eval_plan(self.executor, plan, db, None, scratch, &mut derived, guard)?;
                let ru = &mut stats.per_rule[rule_base + i];
                ru.applications += 1;
                ru.facts_derived += derived.len();
                ru.join_probes += scratch.take_probes();
                ru.wall_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                stats.facts_considered += derived.len();
                for f in derived.rows() {
                    new_facts.push((i, plan.head_pred, Fact::from(f)));
                }
            }
            let mut changed = false;
            for (i, pred, fact) in new_facts {
                let ru = &mut stats.per_rule[rule_base + i];
                if db.insert_id(pred, fact) {
                    stats.facts_added += 1;
                    ru.facts_added += 1;
                    changed = true;
                } else {
                    ru.dedup_hits += 1;
                }
            }
            guard.check_db(db.fact_count())?;
            if !changed {
                return Ok(());
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_stratum_seminaive(
        &self,
        rules: &[&Clause],
        in_stratum: &HashSet<SymId>,
        stratum_idx: usize,
        db: &mut Database,
        stats: &mut EvalStats,
        guard: &EvalGuard,
    ) -> Result<()> {
        // Compile the base plans and, for each body occurrence of a
        // same-stratum predicate, a delta variant. Cardinality estimates
        // come from the database at stratum entry. `*_rule` maps each
        // plan back to its source rule for per-rule counters.
        let base = rules
            .iter()
            .map(|r| RulePlan::compile(r, None, db))
            .collect::<Result<Vec<_>>>()?;
        let base_rule: Vec<usize> = (0..rules.len()).collect();
        let mut variants = Vec::new();
        let mut variant_rule = Vec::new();
        for (ri, r) in rules.iter().enumerate() {
            for p in delta_positions(r, in_stratum) {
                variants.push(RulePlan::compile(r, Some(p), db)?);
                variant_rule.push(ri);
            }
        }
        stats
            .join_orders
            .extend(base.iter().chain(&variants).map(|p| p.order_desc.clone()));
        let rule_base = stats.per_rule.len();
        stats.per_rule.extend(rules.iter().map(|r| RuleStats {
            rule: r.to_string(),
            stratum: stratum_idx,
            ..RuleStats::default()
        }));
        let mut base_scratches: Vec<Scratch> = base.iter().map(RulePlan::new_scratch).collect();
        let mut variant_scratches: Vec<Scratch> =
            variants.iter().map(RulePlan::new_scratch).collect();

        // Iteration 0: apply every rule once against the current database
        // (covers facts and rules whose bodies only use lower strata).
        stats.iterations += 1;
        let round: Vec<(usize, Option<SymId>)> = (0..base.len()).map(|i| (i, None)).collect();
        let mut added_before = stats.facts_added;
        let mut delta = self.apply_round(
            &base,
            &mut base_scratches,
            &round,
            &FxHashMap::default(),
            db.fact_count(),
            db,
            stats,
            guard,
            &base_rule,
            rule_base,
        )?;
        self.emit(&TraceEvent::IterationEnd {
            stratum: stratum_idx,
            iteration: 1,
            facts_added: stats.facts_added - added_before,
        });

        while !delta.is_empty() {
            stats.iterations += 1;
            guard.check_db(db.fact_count())?;
            // Variants whose delta relation is non-empty this iteration.
            let round: Vec<(usize, Option<SymId>)> = variants
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    let d = p.delta_pred.expect("variant has a delta predicate");
                    delta.get(&d).is_some_and(|r| !r.is_empty())
                })
                .map(|(i, p)| (i, p.delta_pred))
                .collect();
            let input: usize = delta.values().map(FactBuf::len).sum();
            added_before = stats.facts_added;
            let next = self.apply_round(
                &variants,
                &mut variant_scratches,
                &round,
                &delta,
                input,
                db,
                stats,
                guard,
                &variant_rule,
                rule_base,
            )?;
            self.emit(&TraceEvent::IterationEnd {
                stratum: stratum_idx,
                iteration: stats.iterations,
                facts_added: stats.facts_added - added_before,
            });
            delta = next;
        }
        Ok(())
    }

    /// Run one iteration's worth of rule variants (`round` indexes into
    /// `plans`), inserting derived facts into `db` and returning the next
    /// delta. Parallelises across worker threads when the configuration
    /// and the input size (`input_facts`) warrant it; the merge order is
    /// the variant order either way, so the resulting database contents
    /// do not depend on the thread count.
    #[allow(clippy::too_many_arguments)]
    fn apply_round(
        &self,
        plans: &[RulePlan],
        scratches: &mut [Scratch],
        round: &[(usize, Option<SymId>)],
        delta: &FxHashMap<SymId, FactBuf>,
        input_facts: usize,
        db: &mut Database,
        stats: &mut EvalStats,
        guard: &EvalGuard,
        rule_of: &[usize],
        rule_base: usize,
    ) -> Result<FxHashMap<SymId, FactBuf>> {
        let mut next_delta: FxHashMap<SymId, FactBuf> = FxHashMap::default();
        // Seal the sorted indexes this round's plans probe (lazy index
        // maintenance: inserts never sort; round boundaries do).
        for &(idx, _) in round {
            for &(p, c) in &plans[idx].index_needs {
                db.ensure_index_id(p, c);
            }
        }
        guard.begin_round(db.fact_count());
        let parallel =
            self.threads > 1 && round.len() >= 2 && input_facts >= self.parallel_threshold;
        if parallel {
            // Workers evaluate against an immutable snapshot, sharing one
            // guard (deadline, budget counters, cancellation token); the
            // main thread merges in variant order.
            let snapshot: &Database = db;
            let executor = self.executor;
            let workers = self.threads.min(round.len());
            let mut results: Vec<(usize, Result<FactBuf>, u64, u64)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let mine: Vec<(usize, Option<SymId>)> =
                                round.iter().skip(w).step_by(workers).copied().collect();
                            scope.spawn(move || {
                                mine.into_iter()
                                    .map(|(idx, dpred)| {
                                        let plan = &plans[idx];
                                        let drel = dpred.map(|d| &delta[&d]);
                                        let mut scratch = plan.new_scratch();
                                        let mut out = FactBuf::default();
                                        let started = Instant::now();
                                        let res = eval_plan(
                                            executor,
                                            plan,
                                            snapshot,
                                            drel,
                                            &mut scratch,
                                            &mut out,
                                            guard,
                                        )
                                        .map(|()| out);
                                        let wall_ns = u64::try_from(started.elapsed().as_nanos())
                                            .unwrap_or(u64::MAX);
                                        (idx, res, scratch.take_probes(), wall_ns)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("evaluation worker panicked"))
                        .collect()
                });
            results.sort_by_key(|&(idx, ..)| idx);
            for (idx, res, probes, wall_ns) in results {
                stats.rule_applications += 1;
                {
                    let ru = &mut stats.per_rule[rule_base + rule_of[idx]];
                    ru.applications += 1;
                    ru.join_probes += probes;
                    ru.wall_ns += wall_ns;
                }
                let derived = res?;
                stats.facts_considered += derived.len();
                let n_derived = derived.len();
                let added_before = stats.facts_added;
                let head = plans[idx].head_pred;
                for f in derived.rows() {
                    self.insert_derived(head, f, db, stats, &mut next_delta);
                }
                let added = stats.facts_added - added_before;
                let ru = &mut stats.per_rule[rule_base + rule_of[idx]];
                ru.facts_derived += n_derived;
                ru.facts_added += added;
                ru.dedup_hits += n_derived - added;
                self.emit(&TraceEvent::RuleApplied {
                    rule: &plans[idx].order_desc,
                    derived: n_derived,
                    added,
                    wall_ns,
                });
            }
        } else {
            let mut derived = FactBuf::default();
            for &(idx, dpred) in round {
                stats.rule_applications += 1;
                let drel = dpred.map(|d| &delta[&d]);
                derived.clear();
                let started = Instant::now();
                eval_plan(
                    self.executor,
                    &plans[idx],
                    db,
                    drel,
                    &mut scratches[idx],
                    &mut derived,
                    guard,
                )?;
                let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                stats.facts_considered += derived.len();
                let n_derived = derived.len();
                let added_before = stats.facts_added;
                let head = plans[idx].head_pred;
                for f in derived.rows() {
                    self.insert_derived(head, f, db, stats, &mut next_delta);
                }
                let added = stats.facts_added - added_before;
                let ru = &mut stats.per_rule[rule_base + rule_of[idx]];
                ru.applications += 1;
                ru.join_probes += scratches[idx].take_probes();
                ru.wall_ns += wall_ns;
                ru.facts_derived += n_derived;
                ru.facts_added += added;
                ru.dedup_hits += n_derived - added;
                self.emit(&TraceEvent::RuleApplied {
                    rule: &plans[idx].order_desc,
                    derived: n_derived,
                    added,
                    wall_ns,
                });
            }
        }
        Ok(next_delta)
    }

    fn insert_derived(
        &self,
        head: SymId,
        fact: &[Const],
        db: &mut Database,
        stats: &mut EvalStats,
        next_delta: &mut FxHashMap<SymId, FactBuf>,
    ) {
        // `insert_if_new_id` copies the fact only when it is genuinely
        // new; duplicates (the common case near fixpoint) allocate
        // nothing. New facts are appended to the flat per-predicate
        // delta buffer — a fact can be new at most once per iteration,
        // so the delta needs no dedup of its own.
        if db.insert_if_new_id(head, fact) {
            stats.facts_added += 1;
            next_delta
                .entry(head)
                .or_default()
                .push_row(fact.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::term::Const;

    fn run(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p).unwrap().run().unwrap()
    }

    fn run_naive(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p)
            .unwrap()
            .with_strategy(Strategy::Naive)
            .run()
            .unwrap()
    }

    #[test]
    fn transitive_closure() {
        let db = run("edge(a, b). edge(b, c). edge(c, d).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).");
        assert_eq!(db.relation("path").unwrap().len(), 6);
        assert!(db.contains("path", &[Const::sym("a"), Const::sym("d")]));
    }

    #[test]
    fn naive_equals_seminaive_on_closure() {
        let src = "edge(a, b). edge(b, c). edge(c, a).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- path(X, Z), path(Z, Y).";
        let a = run(src);
        let b = run_naive(src);
        assert_eq!(
            a.relation("path").unwrap().sorted(),
            b.relation("path").unwrap().sorted()
        );
        assert_eq!(a.relation("path").unwrap().len(), 9); // complete digraph on 3
    }

    #[test]
    fn stratified_negation_complement() {
        let db = run("node(a). node(b). node(c). edge(a, b).\
             reached(b).\
             unreachable(X) :- node(X), not reached(X).");
        let u = db.relation("unreachable").unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&[Const::sym("a")]));
        assert!(u.contains(&[Const::sym("c")]));
    }

    #[test]
    fn negation_with_free_variable_is_not_exists() {
        // q(X) :- p(X), not r(X, Y): succeed iff no Y at all.
        let db = run("p(a). p(b). r(a, z).\
             q(X) :- p(X), not r(X, Y).");
        let q = db.relation("q").unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.contains(&[Const::sym("b")]));
    }

    #[test]
    fn negation_with_repeated_free_variables() {
        // not r(Y, Y): refuted only by a diagonal fact.
        let db = run("p(a). r(x, y).\
             q(X) :- p(X), not r(Y, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 1);
        let db = run("p(a). r(x, x).\
             q(X) :- p(X), not r(Y, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 0);
    }

    #[test]
    fn comparisons_filter() {
        let db = run("n(1). n(2). n(3).\
             big(X) :- n(X), X >= 2.\
             pair(X, Y) :- n(X), n(Y), X < Y.");
        assert_eq!(db.relation("big").unwrap().len(), 2);
        assert_eq!(db.relation("pair").unwrap().len(), 3);
    }

    #[test]
    fn repeated_variable_in_positive_atom() {
        let db = run("e(a, a). e(a, b).\
             loop(X) :- e(X, X).");
        let l = db.relation("loop").unwrap();
        assert_eq!(l.len(), 1);
        assert!(l.contains(&[Const::sym("a")]));
    }

    #[test]
    fn zero_arity_predicates() {
        let db = run("go. done :- go.");
        assert!(db.contains("done", &[]));
    }

    #[test]
    fn same_generation() {
        let db = run("person(a). person(b). person(c). person(d). person(e).\
             par(a, c). par(b, c). par(c, e). par(d, e).\
             sg(X, X) :- person(X).\
             sg(X, Y) :- par(X, Z), par(Y, W), sg(Z, W).");
        let sg = db.relation("sg").unwrap();
        assert!(sg.contains(&[Const::sym("a"), Const::sym("b")]));
        assert!(sg.contains(&[Const::sym("c"), Const::sym("d")]));
        assert!(!sg.contains(&[Const::sym("a"), Const::sym("d")]));
    }

    #[test]
    fn multi_stratum_pipeline() {
        let db = run("e(a, b). e(b, c).\
             t(X, Y) :- e(X, Y).\
             t(X, Y) :- e(X, Z), t(Z, Y).\
             nt(X, Y) :- t(X, X1), t(Y1, Y), not t(X, Y).\
             ok(X) :- t(X, Y), not nt(X, Y).");
        // nt pairs: (b,b)? t = {ab,bc,ac}. Endpoints X in {a,b}, Y in {b,c}.
        // not t(X,Y): (b,b) only. So nt = {(b,b)}.
        assert_eq!(db.relation("nt").unwrap().len(), 1);
        assert!(db.contains("nt", &[Const::sym("b"), Const::sym("b")]));
    }

    #[test]
    fn fact_limit_guard() {
        let p = parse_program(
            "n(1). n(2). n(3). n(4). n(5).\
             p(A, B, C, D) :- n(A), n(B), n(C), n(D).",
        )
        .unwrap();
        let err = Engine::new(&p)
            .unwrap()
            .with_fact_limit(100)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            DatalogError::BudgetExceeded { budget: 100, .. }
        ));
    }

    /// Divergent programs: unbounded successor recursion. Never reaches a
    /// fixpoint, so only a guard can stop it.
    fn divergent() -> crate::Program {
        parse_program("n(0). n(M) :- n(N), M = N + 1.").unwrap()
    }

    #[test]
    fn deadline_stops_divergent_program() {
        let p = divergent();
        let err = Engine::new(&p)
            .unwrap()
            .with_deadline(std::time::Duration::from_millis(50))
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            DatalogError::DeadlineExceeded { limit_ms: 50 }
        ));
    }

    #[test]
    fn budget_stops_divergent_program() {
        let p = divergent();
        let err = Engine::new(&p)
            .unwrap()
            .with_fact_limit(10_000)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            DatalogError::BudgetExceeded { budget: 10_000, .. }
        ));
    }

    #[test]
    fn budget_trips_inside_one_cross_product_iteration() {
        // A single rule application emits 10^4 tuples; with a budget of
        // 500 the guard must trip mid-application, well before the
        // between-iteration check would see the materialized database.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("n({i}). "));
        }
        src.push_str("p(A, B, C, D) :- n(A), n(B), n(C), n(D).");
        let p = parse_program(&src).unwrap();
        let err = Engine::new(&p)
            .unwrap()
            .with_fact_limit(500)
            .run()
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }));
    }

    #[test]
    fn cancel_token_stops_evaluation() {
        let p = divergent();
        let token = crate::CancelToken::new();
        let canceller = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            canceller.cancel();
        });
        let err = Engine::new(&p)
            .unwrap()
            .with_cancel_token(token)
            .run()
            .unwrap_err();
        assert!(matches!(err, DatalogError::Cancelled));
    }

    #[test]
    fn parallel_and_sequential_agree_on_budget_trip() {
        let p = divergent();
        for (threads, threshold) in [(1, 512), (4, 0)] {
            let err = Engine::new(&p)
                .unwrap()
                .with_threads(threads)
                .with_parallel_threshold(threshold)
                .with_fact_limit(5_000)
                .run()
                .unwrap_err();
            assert!(
                matches!(err, DatalogError::BudgetExceeded { budget: 5_000, .. }),
                "threads={threads}: {err}"
            );
        }
    }

    #[test]
    fn parallel_workers_observe_cancellation() {
        let p = divergent();
        let token = crate::CancelToken::new();
        token.cancel(); // already cancelled: first guard check trips
        let err = Engine::new(&p)
            .unwrap()
            .with_threads(4)
            .with_parallel_threshold(0)
            .with_cancel_token(token)
            .run()
            .unwrap_err();
        assert!(matches!(err, DatalogError::Cancelled));
    }

    #[test]
    fn per_rule_and_per_stratum_stats_populated() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let (_, stats) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        assert!(!stats.per_stratum.is_empty());
        assert_eq!(
            stats
                .per_stratum
                .iter()
                .map(|s| s.iterations)
                .sum::<usize>(),
            stats.iterations
        );
        assert_eq!(
            stats
                .per_stratum
                .iter()
                .map(|s| s.facts_added)
                .sum::<usize>(),
            stats.facts_added
        );
        // Each source rule (incl. facts) has a per-rule entry.
        assert_eq!(stats.per_rule.len(), p.clauses().len());
        assert_eq!(
            stats.per_rule.iter().map(|r| r.facts_added).sum::<usize>(),
            stats.facts_added
        );
        assert_eq!(
            stats
                .per_rule
                .iter()
                .map(|r| r.facts_derived)
                .sum::<usize>(),
            stats.facts_considered
        );
        let recursive = stats
            .per_rule
            .iter()
            .find(|r| r.rule.contains("path(X, Z)") || r.rule.contains("path"))
            .expect("path rule present");
        assert!(recursive.applications > 0);
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn recording_trace_sees_stratum_and_rule_events() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let sink = std::sync::Arc::new(crate::RecordingTrace::new());
        let trace: std::sync::Arc<dyn crate::TraceSink> = sink.clone();
        Engine::new(&p).unwrap().with_trace(trace).run().unwrap();
        let events = sink.events();
        assert!(events.iter().any(|e| e.contains("StratumStart")));
        assert!(events.iter().any(|e| e.contains("RuleApplied")));
        assert!(events.iter().any(|e| e.contains("StratumEnd")));
    }

    #[test]
    fn guard_trip_emits_trace_event() {
        let p = divergent();
        let sink = std::sync::Arc::new(crate::RecordingTrace::new());
        let trace: std::sync::Arc<dyn crate::TraceSink> = sink.clone();
        let err = Engine::new(&p)
            .unwrap()
            .with_trace(trace)
            .with_fact_limit(1_000)
            .run()
            .unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }));
        assert!(sink.events().iter().any(|e| e.contains("GuardTrip")));
    }

    #[test]
    fn stats_are_populated() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let (_, stats) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        assert!(stats.iterations >= 2);
        assert!(stats.facts_added >= 5);
        assert!(stats.rule_applications > 0);
        assert!(!stats.join_orders.is_empty());
    }

    #[test]
    fn seminaive_does_less_work_than_naive() {
        // Long chain: naive re-derives everything every iteration.
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
        let p = parse_program(&src).unwrap();
        let (db_s, s) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        let (db_n, n) = Engine::new(&p)
            .unwrap()
            .with_strategy(Strategy::Naive)
            .run_with_stats()
            .unwrap();
        assert_eq!(
            db_s.relation("path").unwrap().sorted(),
            db_n.relation("path").unwrap().sorted()
        );
        assert!(
            s.facts_considered < n.facts_considered,
            "semi-naive {} vs naive {}",
            s.facts_considered,
            n.facts_considered
        );
    }

    #[test]
    fn empty_program_runs() {
        let db = run("");
        assert_eq!(db.fact_count(), 0);
    }

    #[test]
    fn rule_over_missing_relation_is_empty() {
        let db = run("p(X) :- q(X). q(X) :- r(X, X).");
        assert_eq!(db.relation("p").unwrap().len(), 0);
    }

    #[test]
    fn constants_in_rule_heads_and_bodies() {
        let db = run("color(car, red). color(bus, blue).\
             is_red(X) :- color(X, red).\
             flag(found) :- color(car, red).");
        assert!(db.contains("is_red", &[Const::sym("car")]));
        assert!(db.contains("flag", &[Const::sym("found")]));
    }

    #[test]
    fn join_orders_mention_delta_variants() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let (_, stats) = Engine::new(&p).unwrap().run_with_stats().unwrap();
        assert!(
            stats.join_orders.iter().any(|o| o.contains("Δ")),
            "orders: {:?}",
            stats.join_orders
        );
    }

    #[test]
    fn bfs_algo_matches_rule_at_a_time_closure() {
        let src = "edge(a, b). edge(b, c). edge(c, d). edge(d, b).\
             reach(X, Y) :- @bfs(edge, X, Y).\
             path(X, Y) :- edge(X, Y).\
             path(X, Y) :- edge(X, Z), path(Z, Y).";
        let db = run(src);
        assert_eq!(
            db.relation("reach").unwrap().sorted(),
            db.relation("path").unwrap().sorted()
        );
    }

    #[test]
    fn algo_output_joins_with_other_literals() {
        let db = run("edge(a, b). edge(b, c). target(c).\
             hits(X) :- @bfs(edge, X, Y), target(Y).");
        let h = db.relation("hits").unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.contains(&[Const::sym("a")]));
        assert!(h.contains(&[Const::sym("b")]));
    }

    #[test]
    fn algo_feeds_recursion_in_higher_stratum() {
        // cc representatives become edges of a second graph.
        let db = run("e(a, b). e(c, d).\
             rep_edge(R1, R2) :- @cc(e, a, R1), @cc(e, c, R2).\
             linked(X, Y) :- rep_edge(X, Y).");
        assert!(!db.relation("linked").unwrap().is_empty());
    }

    #[test]
    fn unknown_algo_errors_at_materialization() {
        let p = parse_program("e(a, b). r(X, Y) :- @pagerank(e, X, Y).").unwrap();
        let err = Engine::new(&p).unwrap().run().unwrap_err();
        assert!(matches!(err, DatalogError::UnknownAlgo { name } if name == "pagerank"));
    }

    #[test]
    fn algo_goal_answered_without_program_rule() {
        // The algo call appears only in the goal: materialized post hoc
        // over the finished cone.
        let p = parse_program("edge(a, b). edge(b, c).").unwrap();
        let goal = crate::parser::parse_query("@bfs(edge, a, Y)").unwrap();
        let (answers, stats) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
        assert_eq!(answers.len(), 2); // b, c
        assert_eq!(stats.demand.unwrap().strategy, "cone");
    }

    #[test]
    fn goal_on_algo_cone_falls_back_to_cone_strategy() {
        let p = parse_program(
            "edge(a, b). edge(b, c).\
             reach(X, Y) :- @bfs(edge, X, Y).",
        )
        .unwrap();
        let goal = crate::parser::parse_query("reach(a, Y)").unwrap();
        let (answers, stats) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.demand.unwrap().strategy, "cone");
    }

    #[test]
    fn count_groups_by_remaining_head_positions() {
        let db = run("edge(a, b). edge(a, c). edge(b, c).\
             out(X, count(Y)) :- edge(X, Y).");
        let o = db.relation("out").unwrap();
        assert_eq!(o.len(), 2);
        assert!(o.contains(&[Const::sym("a"), Const::int(2)]));
        assert!(o.contains(&[Const::sym("b"), Const::int(1)]));
    }

    #[test]
    fn sum_min_max_fold_per_group() {
        let src = "score(alice, 3). score(alice, 5). score(bob, 7).\
             total(P, sum(S)) :- score(P, S).\
             lo(P, min(S)) :- score(P, S).\
             hi(P, max(S)) :- score(P, S).";
        let db = run(src);
        assert!(db.contains("total", &[Const::sym("alice"), Const::int(8)]));
        assert!(db.contains("total", &[Const::sym("bob"), Const::int(7)]));
        assert!(db.contains("lo", &[Const::sym("alice"), Const::int(3)]));
        assert!(db.contains("hi", &[Const::sym("alice"), Const::int(5)]));
    }

    #[test]
    fn aggregate_counts_distinct_witnesses_not_projections() {
        // Two witnesses (b,1) and (b,2) project to the same group count
        // contribution — bag semantics over distinct witness bindings:
        // count(Y) for X=a must be 1 (only Y=b), but the two source
        // tuples differing in Z both count for sum-like folds through
        // a polyinstantiation-style extra column.
        let db = run("m(a, b, 1). m(a, b, 2).\
             n(X, count(Y)) :- m(X, Y, Z).");
        // Witnesses for X=a: (b,1), (b,2) — distinct, so the fold sees
        // two rows, both with Y=b. count is over witnesses: 2.
        assert!(db.contains("n", &[Const::sym("a"), Const::int(2)]));
    }

    #[test]
    fn aggregate_over_empty_body_emits_no_groups() {
        let db = run("p(a). q(X, count(Y)) :- p(X), r(X, Y).");
        assert_eq!(db.relation("q").unwrap().len(), 0);
    }

    #[test]
    fn aggregate_feeds_downstream_rules() {
        let db = run("edge(a, b). edge(a, c). edge(b, c).\
             deg(X, count(Y)) :- edge(X, Y).\
             busy(X) :- deg(X, N), N >= 2.");
        let b = db.relation("busy").unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.contains(&[Const::sym("a")]));
    }

    #[test]
    fn sum_over_symbol_errors() {
        let p = parse_program("p(a, x). t(X, sum(S)) :- p(X, S).").unwrap();
        let err = Engine::new(&p).unwrap().run().unwrap_err();
        assert!(matches!(err, DatalogError::AggregateFailure { .. }));
    }

    #[test]
    fn aggregate_goal_falls_back_to_cone() {
        let p = parse_program(
            "score(alice, 3). score(alice, 5).\
             total(P, sum(S)) :- score(P, S).",
        )
        .unwrap();
        let goal = crate::parser::parse_query("total(alice, T)").unwrap();
        let (answers, stats) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers.answers[0].get("T"),
            Some(&Const::int(8)),
            "answers: {answers:?}"
        );
        assert_eq!(stats.demand.unwrap().strategy, "cone");
    }

    #[test]
    fn aggregates_identical_across_threads_and_executors() {
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&format!("s(g{}, {}). ", i % 3, i));
        }
        src.push_str("t(G, sum(V)) :- s(G, V). c(G, count(V)) :- s(G, V).");
        let p = parse_program(&src).unwrap();
        let baseline = Engine::new(&p).unwrap().with_threads(1).run().unwrap();
        for threads in [1, 4] {
            for executor in [Executor::Batched, Executor::Tuple] {
                let db = Engine::new(&p)
                    .unwrap()
                    .with_threads(threads)
                    .with_parallel_threshold(0)
                    .with_executor(executor)
                    .run()
                    .unwrap();
                for (pred, rel) in baseline.relations() {
                    assert_eq!(
                        rel.sorted(),
                        db.relation(pred).unwrap().sorted(),
                        "{pred} differs (threads={threads}, executor={executor:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let mut src = String::new();
        for i in 0..40 {
            src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
        }
        src.push_str("edge(n40, n0).\n"); // cycle
        src.push_str(
            "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).\
             looped(X) :- path(X, X).\
             unlooped(X) :- path(X, Y), not looped(X).",
        );
        let p = parse_program(&src).unwrap();
        let seq = Engine::new(&p).unwrap().with_threads(1).run().unwrap();
        for threads in [2, 4] {
            let par = Engine::new(&p)
                .unwrap()
                .with_threads(threads)
                .with_parallel_threshold(0)
                .run()
                .unwrap();
            assert_eq!(seq.fact_count(), par.fact_count(), "threads={threads}");
            for (pred, rel) in seq.relations() {
                assert_eq!(
                    rel.sorted(),
                    par.relation(pred).unwrap().sorted(),
                    "relation {pred} differs with threads={threads}"
                );
            }
        }
    }
}
