//! Programs: clause collections with arity checking, dependency analysis,
//! and stratification.

use std::collections::HashMap;
use std::fmt;

use crate::atom::Literal;
use crate::clause::Clause;
use crate::term::SymId;
use crate::{DatalogError, Result};

/// A validated Datalog program.
#[derive(Clone, Default)]
pub struct Program {
    clauses: Vec<Clause>,
    /// Interned predicate → arity.
    arities: HashMap<SymId, usize>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Build a program from clauses, checking safety and arity consistency.
    pub fn from_clauses(clauses: Vec<Clause>) -> Result<Self> {
        let mut p = Program::new();
        for c in clauses {
            p.push(c)?;
        }
        Ok(p)
    }

    /// Build a program from clauses **without** any validation — no
    /// safety checking, no arity recording for `skip_arity` predicates.
    /// Test-only: lets regression tests reach the engine's internal
    /// invariant errors, which validated construction makes unreachable.
    #[cfg(test)]
    pub(crate) fn from_clauses_unchecked(clauses: Vec<Clause>, skip_arity: &[&str]) -> Self {
        let mut arities = HashMap::new();
        for c in &clauses {
            for (pred, arity) in std::iter::once((c.head.predicate, c.head.arity())).chain(
                c.body
                    .iter()
                    .filter_map(|l| l.atom().map(|a| (a.predicate, a.arity()))),
            ) {
                if !skip_arity.contains(&pred.as_str()) {
                    arities.entry(pred).or_insert(arity);
                }
            }
        }
        Program { clauses, arities }
    }

    /// Add one clause, validating it.
    pub fn push(&mut self, clause: Clause) -> Result<()> {
        clause.check_safety()?;
        self.check_arity(&clause)?;
        self.clauses.push(clause);
        Ok(())
    }

    /// Append all clauses of another program.
    pub fn extend(&mut self, other: &Program) -> Result<()> {
        for c in &other.clauses {
            self.push(c.clone())?;
        }
        Ok(())
    }

    fn check_arity(&mut self, clause: &Clause) -> Result<()> {
        let mut check = |pred: SymId, arity: usize| -> Result<()> {
            match self.arities.get(&pred) {
                Some(&a) if a != arity => Err(DatalogError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected: a,
                    found: arity,
                }),
                Some(_) => Ok(()),
                None => {
                    self.arities.insert(pred, arity);
                    Ok(())
                }
            }
        };
        check(clause.head.predicate, clause.head.arity())?;
        for l in &clause.body {
            if let Some(a) = l.atom() {
                check(a.predicate, a.arity())?;
            }
        }
        Ok(())
    }

    /// The clauses in insertion order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The declared arity of a predicate, if seen.
    pub fn arity(&self, predicate: &str) -> Option<usize> {
        self.arities.get(&SymId::intern(predicate)).copied()
    }

    /// All predicate names, sorted.
    pub fn predicates(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.arities.keys().map(|k| k.as_str()).collect();
        out.sort_unstable();
        out
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The set of predicates the given seed predicates depend on
    /// (transitively, through positive and negative body literals),
    /// including the seeds themselves. Used for query-restricted
    /// evaluation: predicates outside this set cannot influence the
    /// query's answers. An `@algo(input)` call predicate depends on its
    /// input relation, so demanding the call pulls the input in too.
    pub fn dependencies_of<'a>(
        &self,
        seeds: impl IntoIterator<Item = &'a str>,
    ) -> std::collections::HashSet<String> {
        let mut needed: std::collections::HashSet<String> =
            seeds.into_iter().map(str::to_owned).collect();
        loop {
            let mut changed = false;
            // Algo call predicates have no defining clauses; their input
            // dependency lives in the predicate name itself.
            let inputs: Vec<String> = needed
                .iter()
                .filter_map(|p| crate::algo::parse_call(p))
                .map(|(_, input)| input.to_owned())
                .collect();
            for input in inputs {
                if needed.insert(input) {
                    changed = true;
                }
            }
            for c in &self.clauses {
                if !needed.contains(c.head.predicate.as_ref()) {
                    continue;
                }
                for l in &c.body {
                    if let Some(a) = l.atom() {
                        if needed.insert(a.predicate.to_string()) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return needed;
            }
        }
    }

    /// A copy of the program with every clause whose head is in
    /// `excluded` dropped. The arity table is kept whole, so the copy
    /// still validates literals over excluded predicates (they behave as
    /// empty EDB relations).
    ///
    /// This is the demand-cone hook for callers that *know* a predicate
    /// cannot contribute to any visible answer — e.g. the τ reduction's
    /// per-level belief machinery for levels outside the session
    /// clearance, whose every use site is conjoined with a statically
    /// false `dominate` guard. Excluding such predicates keeps the
    /// magic-sets rewrite from demanding (and materializing) their
    /// sub-fixpoints.
    pub fn without_predicates(&self, excluded: &std::collections::HashSet<String>) -> Program {
        Program {
            clauses: self
                .clauses
                .iter()
                .filter(|c| !excluded.contains(c.head.predicate.as_str()))
                .cloned()
                .collect(),
            arities: self.arities.clone(),
        }
    }

    /// A copy of the program with every clause structurally equal to one
    /// in `excluded` dropped (the arity table is kept whole). The
    /// clause-granular companion of [`Program::without_predicates`]: the
    /// flow-pruned demand path drops individual rules that a static
    /// analysis proved can never fire, while other clauses with the same
    /// head predicate (in particular its EDB facts) stay live.
    pub fn without_clauses(&self, excluded: &std::collections::HashSet<Clause>) -> Program {
        Program {
            clauses: self
                .clauses
                .iter()
                .filter(|c| !excluded.contains(c))
                .cloned()
                .collect(),
            arities: self.arities.clone(),
        }
    }

    /// The predicate dependency graph of the program: one node per
    /// predicate, one edge from every body predicate to the head
    /// predicate that depends on it, tagged negative when the body
    /// literal is negated. Shared by stratification (which needs the
    /// negative-cycle witness) and the static-analysis pass in
    /// [`mod@crate::analyze`].
    pub fn dependency_graph(&self) -> DepGraph {
        let preds: Vec<String> = self.predicates().iter().map(|&p| p.to_owned()).collect();
        let index: HashMap<String, usize> = preds
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        let mut edges = Vec::new();
        for c in &self.clauses {
            // Clauses naming a predicate outside the arity table cannot
            // exist in a validated program; total lookup (skip) instead
            // of indexing keeps the analysis panic-free regardless.
            let Some(&h) = index.get(c.head.predicate.as_ref()) else {
                continue;
            };
            // Aggregate clauses read their body like negation reads its
            // atom: the body must be complete before the fold runs, so
            // every body edge is negative (stratum-separating).
            let agg = c.agg.is_some();
            for l in &c.body {
                let (q, negative) = match l {
                    Literal::Pos(a) => (index.get(a.predicate.as_ref()), agg),
                    Literal::Neg(a) => (index.get(a.predicate.as_ref()), true),
                    Literal::Cmp { .. } | Literal::Arith { .. } => continue,
                };
                let Some(&q) = q else { continue };
                edges.push((q, h, negative));
            }
        }
        // `@algo(input)` call predicates depend negatively on their
        // input relation: the operator consumes the *complete* input, so
        // the call sits strictly above it — a dependency edge like
        // negation.
        for (p, &pi) in &index {
            if let Some((_, input)) = crate::algo::parse_call(p) {
                if let Some(&qi) = index.get(input) {
                    edges.push((qi, pi, true));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        DepGraph {
            preds,
            index,
            edges,
        }
    }

    /// Compute a stratification of the program.
    ///
    /// Predicates are assigned to strata such that positive dependencies
    /// stay within or below a stratum and negative dependencies point
    /// strictly below. Errors with [`DatalogError::NotStratifiable`] when a
    /// predicate depends negatively on itself through recursion; the error
    /// carries the full witness cycle from [`DepGraph::negative_cycle`].
    pub fn stratify(&self) -> Result<Stratification> {
        // Collect predicate ids.
        let preds: Vec<&str> = self.predicates();
        let id: HashMap<&str, usize> = preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let n = preds.len();

        // stratum[p] via the standard iterative algorithm:
        //   pos edge q -> head: stratum(head) >= stratum(q)
        //   neg edge q -> head: stratum(head) >= stratum(q) + 1
        // Iterate to fixpoint; if any stratum exceeds n, there is a negative
        // cycle.
        let mut stratum = vec![0usize; n];
        // An `@algo(input)` call predicate sits strictly above its input
        // relation, exactly like a negated dependency: the operator only
        // runs once the input is complete.
        let algo_edges: Vec<(usize, usize)> = preds
            .iter()
            .filter_map(|&p| {
                let (_, input) = crate::algo::parse_call(p)?;
                Some((*id.get(input)?, *id.get(p)?))
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for c in &self.clauses {
                // Total lookups, as in `dependency_graph`: a predicate
                // missing from the arity table contributes no
                // constraints rather than a panic.
                let Some(&h) = id.get(c.head.predicate.as_ref()) else {
                    continue;
                };
                // Aggregate bodies must be complete before the fold,
                // like negation: every body edge separates strata.
                let agg_delta = usize::from(c.agg.is_some());
                for l in &c.body {
                    let (q, delta) = match l {
                        Literal::Pos(a) => (id.get(a.predicate.as_ref()), agg_delta),
                        Literal::Neg(a) => (id.get(a.predicate.as_ref()), 1),
                        Literal::Cmp { .. } | Literal::Arith { .. } => continue,
                    };
                    let Some(&q) = q else { continue };
                    let need = stratum[q] + delta;
                    if stratum[h] < need {
                        if need > n {
                            let cycle = self
                                .dependency_graph()
                                .negative_cycle()
                                .unwrap_or_else(|| vec![c.head.predicate.to_string()]);
                            return Err(DatalogError::NotStratifiable { cycle });
                        }
                        stratum[h] = need;
                        changed = true;
                    }
                }
            }
            for &(q, h) in &algo_edges {
                let need = stratum[q] + 1;
                if stratum[h] < need {
                    if need > n {
                        let cycle = self
                            .dependency_graph()
                            .negative_cycle()
                            .unwrap_or_else(|| vec![preds[h].to_owned()]);
                        return Err(DatalogError::NotStratifiable { cycle });
                    }
                    stratum[h] = need;
                    changed = true;
                }
            }
        }

        let max = stratum.iter().copied().max().unwrap_or(0);
        let mut strata: Vec<Vec<String>> = vec![Vec::new(); max + 1];
        for (i, &s) in stratum.iter().enumerate() {
            strata[s].push(preds[i].to_owned());
        }
        let by_pred = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (p.to_owned(), stratum[i]))
            .collect();
        Ok(Stratification { strata, by_pred })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Program({} clauses)", self.clauses.len())
    }
}

/// The predicate dependency graph of a program (see
/// [`Program::dependency_graph`]). Edges run from a body predicate to the
/// head predicate of the clause using it; an edge is *negative* when some
/// clause uses the body predicate under `not`.
#[derive(Clone, Debug)]
pub struct DepGraph {
    preds: Vec<String>,
    index: HashMap<String, usize>,
    /// `(from, to, negative)`, sorted and deduplicated.
    edges: Vec<(usize, usize, bool)>,
}

impl DepGraph {
    /// Build a dependency graph directly from nodes and edges, for
    /// analyses over non-Datalog rule systems (the MultiLog lattice-flow
    /// pass builds its Σ/Π predicate graph this way and reuses the SCC
    /// machinery). Edges are `(from, to, negative)` node indices;
    /// out-of-range edges are dropped.
    pub fn from_edges(nodes: Vec<String>, mut edges: Vec<(usize, usize, bool)>) -> DepGraph {
        let n = nodes.len();
        edges.retain(|&(q, h, _)| q < n && h < n);
        edges.sort_unstable();
        edges.dedup();
        let index = nodes
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        DepGraph {
            preds: nodes,
            index,
            edges,
        }
    }

    /// The predicate names, sorted (node order).
    pub fn predicates(&self) -> &[String] {
        &self.preds
    }

    /// The node index of a predicate.
    pub fn index_of(&self, predicate: &str) -> Option<usize> {
        self.index.get(predicate).copied()
    }

    /// Iterate over edges as `(from, to, negative)` predicate names.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, bool)> {
        self.edges
            .iter()
            .map(|&(q, h, neg)| (self.preds[q].as_str(), self.preds[h].as_str(), neg))
    }

    /// The predicates transitively reachable from `seeds` by following
    /// edges *forward* (i.e. the predicates that depend on a seed),
    /// including the seeds themselves.
    pub fn dependents_of<'a>(&self, seeds: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        let mut seen = vec![false; self.preds.len()];
        let mut stack: Vec<usize> = seeds.into_iter().filter_map(|s| self.index_of(s)).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(q) = stack.pop() {
            for &(from, to, _) in &self.edges {
                if from == q && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        let mut out: Vec<String> = seen
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| self.preds[i].clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// Strongly connected components, each a sorted list of node indices.
    /// Iterative Kosaraju — robust against deep recursion on generated
    /// programs.
    fn sccs(&self) -> Vec<usize> {
        let n = self.preds.len();
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(q, h, _) in &self.edges {
            fwd[q].push(h);
            rev[h].push(q);
        }
        // Pass 1: finish order via iterative DFS over the forward graph.
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in-stack, 2 done
        let mut order = Vec::with_capacity(n);
        for root in 0..n {
            if state[root] != 0 {
                continue;
            }
            let mut stack = vec![(root, 0usize)];
            state[root] = 1;
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < fwd[v].len() {
                    let w = fwd[v][*next];
                    *next += 1;
                    if state[w] == 0 {
                        state[w] = 1;
                        stack.push((w, 0));
                    }
                } else {
                    state[v] = 2;
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Pass 2: components over the reverse graph in reverse finish order.
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for &root in order.iter().rev() {
            if comp[root] != usize::MAX {
                continue;
            }
            let mut stack = vec![root];
            comp[root] = c;
            while let Some(v) = stack.pop() {
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = c;
                        stack.push(w);
                    }
                }
            }
            c += 1;
        }
        comp
    }

    /// The strongly connected components in **dependency order**: every
    /// edge either stays inside one component or runs from an earlier
    /// component to a later one, so a fixpoint that processes components
    /// in the returned order (iterating only within each component)
    /// visits every predicate's dependencies before the predicate
    /// itself. Each component is a sorted list of node indices.
    pub fn condensation(&self) -> Vec<Vec<usize>> {
        let comp = self.sccs();
        let count = comp.iter().copied().max().map_or(0, |c| c + 1);
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); count];
        for (node, &c) in comp.iter().enumerate() {
            out[c].push(node);
        }
        out
    }

    /// Whether `a` and `b` are in the same strongly connected component
    /// (i.e. mutually recursive). A predicate is *not* considered
    /// recursive with itself unless it actually sits on a cycle.
    pub fn same_scc(&self, a: &str, b: &str) -> bool {
        let comp = self.sccs();
        match (self.index_of(a), self.index_of(b)) {
            (Some(i), Some(j)) => {
                comp[i] == comp[j]
                    && (i != j
                        || self
                            .edges
                            .iter()
                            .any(|&(q, h, _)| comp[q] == comp[i] && comp[h] == comp[i] && q == h)
                        || self.condensation()[comp[i]].len() > 1)
            }
            _ => false,
        }
    }

    /// A witness that the program is not stratifiable: an ordered
    /// predicate list `p₀ → p₁ → … → pₙ` such that every consecutive edge
    /// (and the closing edge `pₙ → p₀`) is a dependency edge and at least
    /// one of them is negative. `None` when every negative edge crosses
    /// between distinct strongly connected components (the program is
    /// stratifiable).
    ///
    /// Deterministic: the lexicographically first negative in-component
    /// edge is chosen, and the closing path is a shortest path found by
    /// BFS over sorted adjacency.
    pub fn negative_cycle(&self) -> Option<Vec<String>> {
        let comp = self.sccs();
        // The negative edge (q -> h) inside one SCC with the smallest
        // (from-name, to-name); edges are already sorted by index, which
        // matches name order because `preds` is sorted.
        let &(q, h, _) = self
            .edges
            .iter()
            .find(|&&(q, h, neg)| neg && comp[q] == comp[h])?;
        // Shortest path h ~> q staying inside the component.
        let n = self.preds.len();
        let mut prev = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([h]);
        let mut seen = vec![false; n];
        seen[h] = true;
        while let Some(v) = queue.pop_front() {
            if v == q {
                break;
            }
            for &(from, to, _) in &self.edges {
                if from == v && comp[to] == comp[h] && !seen[to] {
                    seen[to] = true;
                    prev[to] = v;
                    queue.push_back(to);
                }
            }
        }
        // Reconstruct h … q, then rotate so the cycle starts at h (the
        // head of the negative edge): [h, …, q] with the closing negative
        // edge q -> h implicit.
        let mut path = vec![q];
        let mut cur = q;
        while cur != h {
            cur = prev[cur];
            if cur == usize::MAX {
                // q unreachable from h inside the SCC — cannot happen for a
                // genuine SCC, but stay defensive for degenerate graphs.
                return Some(vec![self.preds[h].clone()]);
            }
            path.push(cur);
        }
        path.reverse(); // h … q
        Some(path.into_iter().map(|i| self.preds[i].clone()).collect())
    }
}

/// A stratification: predicates grouped into evaluation layers.
#[derive(Clone, Debug)]
pub struct Stratification {
    strata: Vec<Vec<String>>,
    by_pred: HashMap<String, usize>,
}

impl Stratification {
    /// The number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether there are no strata (empty program).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// The predicates of stratum `i` (sorted).
    pub fn stratum(&self, i: usize) -> &[String] {
        &self.strata[i]
    }

    /// The stratum index of a predicate.
    pub fn stratum_of(&self, predicate: &str) -> Option<usize> {
        self.by_pred.get(predicate).copied()
    }

    /// Iterate over strata, lowest first.
    pub fn iter(&self) -> impl Iterator<Item = &[String]> {
        self.strata.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn arity_mismatch_detected() {
        let err = parse_program("p(a). p(a, b).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_in_body() {
        let err = parse_program("p(a). q(X) :- p(X, X).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn positive_recursion_single_stratum() {
        let p = parse_program(
            "edge(a, b). path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let s = p.stratify().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum_of("path"), Some(0));
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let p = parse_program(
            "node(a). node(b). edge(a, b).\
             unreachable(X) :- node(X), not reached(X).\
             reached(X) :- edge(a, X).",
        )
        .unwrap();
        let s = p.stratify().unwrap();
        let r = s.stratum_of("reached").unwrap();
        let u = s.stratum_of("unreachable").unwrap();
        assert!(u > r);
    }

    #[test]
    fn negative_recursion_rejected() {
        let err = parse_program("win(X) :- move(X, Y), not win(Y). move(a, b).")
            .unwrap()
            .stratify()
            .unwrap_err();
        assert!(matches!(err, DatalogError::NotStratifiable { .. }));
    }

    #[test]
    fn mutual_negative_recursion_rejected() {
        let err = parse_program("p(X) :- base(X), not q(X). q(X) :- base(X), not p(X). base(a).")
            .unwrap()
            .stratify()
            .unwrap_err();
        assert!(matches!(err, DatalogError::NotStratifiable { .. }));
    }

    #[test]
    fn empty_program_stratifies() {
        let p = Program::new();
        let s = p.stratify().unwrap();
        assert_eq!(s.len(), 1); // one empty stratum
        assert!(s.stratum(0).is_empty());
    }

    #[test]
    fn predicates_sorted() {
        let p = parse_program("b(x). a(y). c(Z) :- a(Z).").unwrap();
        assert_eq!(p.predicates(), vec!["a", "b", "c"]);
        assert_eq!(p.arity("a"), Some(1));
        assert_eq!(p.arity("zz"), None);
    }

    #[test]
    fn algo_call_sits_above_its_input() {
        let p = parse_program("edge(a, b). reach(X, Y) :- @bfs(edge, X, Y).").unwrap();
        let s = p.stratify().unwrap();
        assert!(s.stratum_of("@bfs(edge)").unwrap() > s.stratum_of("edge").unwrap());
        assert!(s.stratum_of("reach").unwrap() >= s.stratum_of("@bfs(edge)").unwrap());
        let deps = p.dependencies_of(["reach"]);
        assert!(deps.contains("edge"), "algo input is a dependency");
        let graph = p.dependency_graph();
        assert!(graph
            .edges()
            .any(|(q, h, neg)| q == "edge" && h == "@bfs(edge)" && neg));
    }

    #[test]
    fn algo_input_cycle_rejected() {
        let p = parse_program(
            "edge(a, b). edge(X, Y) :- reach(X, Y). reach(X, Y) :- @bfs(edge, X, Y).",
        )
        .unwrap();
        assert!(matches!(
            p.stratify().unwrap_err(),
            DatalogError::NotStratifiable { .. }
        ));
    }

    #[test]
    fn aggregate_clause_sits_above_its_body() {
        let p =
            parse_program("p(a, 1). t(G, count(V)) :- p(G, V). q(X) :- t(X, N), N > 0.").unwrap();
        let s = p.stratify().unwrap();
        assert!(s.stratum_of("t").unwrap() > s.stratum_of("p").unwrap());
        let graph = p.dependency_graph();
        assert!(graph.edges().any(|(q, h, neg)| q == "p" && h == "t" && neg));
    }

    #[test]
    fn aggregation_through_recursion_rejected() {
        let p = parse_program("p(a, 1). t(G, count(V)) :- p(G, V), t(G, V).").unwrap();
        assert!(matches!(
            p.stratify().unwrap_err(),
            DatalogError::NotStratifiable { .. }
        ));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let src = "p(X) :- q(X), not r(X), X != a.\nq(a).\nq(b).\nr(b).\n";
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p.len(), p2.len());
        assert_eq!(printed, p2.to_string());
    }
}
