//! Evaluation guards: wall-clock deadlines, fact budgets, and
//! cooperative cancellation.
//!
//! A single [`EvalGuard`] is created per evaluation run and shared (by
//! reference) across every rule application, including the scoped worker
//! threads of the parallel semi-naive path. Workers do not consult the
//! guard on every row — each holds a [`GuardCursor`] that counts work
//! locally and performs the (comparatively expensive) deadline / budget /
//! cancellation check every [`CHECK_INTERVAL`] ticks, so the fast path is
//! one increment and one predictable branch.
//!
//! The fact budget is enforced *inside* the join loop: emitted head
//! tuples are flushed into a shared counter at every check, so a single
//! cross-product iteration trips the budget after at most
//! `CHECK_INTERVAL` tuples per worker beyond the limit — it no longer
//! needs to survive until the between-iteration check. The budgeted
//! quantity is `facts materialized + tuples buffered this round`, which
//! is exactly what occupies memory while a round is in flight.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{DatalogError, Result};

/// How many cursor ticks elapse between two slow-path guard checks.
pub(crate) const CHECK_INTERVAL: u32 = 4096;

/// The clock is read only on every `TIME_CHECK_PERIOD`-th flush:
/// `Instant::now` is the one genuinely expensive part of a guard check,
/// and at one read per [`CHECK_INTERVAL`] ticks it dominates the
/// guarded-vs-unguarded gap on join-heavy workloads. Cancellation and
/// the fact budget stay checked on every flush. The worst-case extra
/// latency before a deadline trips is `TIME_CHECK_PERIOD *
/// CHECK_INTERVAL` ticks of join work per worker — well under a
/// millisecond — against deadlines measured in whole milliseconds.
const TIME_CHECK_PERIOD: u32 = 16;

/// A cloneable cooperative cancellation token.
///
/// Cloning shares the underlying flag: cancelling any clone cancels the
/// evaluation holding any other clone. Evaluation observes the flag at
/// guard-check granularity and surfaces [`DatalogError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Create a fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Clear a previous cancellation so the token can arm another
    /// request. Long-lived sessions share one token across many
    /// operations; after cancelling one, `reset` re-opens the session
    /// without re-plumbing a fresh token through the engine.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Shared guard state for one evaluation run.
///
/// Thread-safe: the parallel semi-naive workers share one guard by
/// reference; the budget counters are atomics.
#[derive(Debug)]
pub(crate) struct EvalGuard {
    deadline: Option<Instant>,
    /// The configured deadline, kept for error reporting.
    deadline_limit_ms: u64,
    /// Maximum facts materialized + buffered; `usize::MAX` = unlimited.
    budget: usize,
    cancel: Option<CancelToken>,
    /// Facts in the database when the current round began.
    base_facts: AtomicUsize,
    /// Head tuples emitted (including duplicates) this round, flushed
    /// from cursors in batches.
    pending: AtomicUsize,
}

impl EvalGuard {
    pub(crate) fn new(
        deadline: Option<Duration>,
        budget: usize,
        cancel: Option<CancelToken>,
    ) -> Self {
        EvalGuard {
            deadline: deadline.map(|d| Instant::now() + d),
            deadline_limit_ms: deadline.map_or(0, |d| d.as_millis() as u64),
            budget,
            cancel,
            base_facts: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
        }
    }

    /// A guard that never trips; used by ad hoc query evaluation.
    pub(crate) fn unlimited() -> Self {
        EvalGuard::new(None, usize::MAX, None)
    }

    /// Reset the round-local budget counters. Called once per iteration
    /// with the current database size.
    pub(crate) fn begin_round(&self, db_facts: usize) {
        self.base_facts.store(db_facts, Ordering::Relaxed);
        self.pending.store(0, Ordering::Relaxed);
    }

    /// Between-iteration budget check against the materialized database.
    pub(crate) fn check_db(&self, db_facts: usize) -> Result<()> {
        if db_facts > self.budget {
            return Err(DatalogError::BudgetExceeded {
                budget: self.budget,
                used: db_facts,
            });
        }
        Ok(())
    }

    /// Slow-path check: cancellation, deadline, then budget. `emitted`
    /// is the cursor's locally accumulated tuple count, folded into the
    /// shared round counter here. The deadline compare reads the clock,
    /// the one genuinely expensive part of the check, so callers gate it
    /// with `check_time`.
    fn check(&self, emitted: usize, check_time: bool) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(DatalogError::Cancelled);
            }
        }
        if check_time {
            self.check_deadline()?;
        }
        if self.budget != usize::MAX {
            let pending = self.pending.fetch_add(emitted, Ordering::Relaxed) + emitted;
            let used = self.base_facts.load(Ordering::Relaxed) + pending;
            if used > self.budget {
                return Err(DatalogError::BudgetExceeded {
                    budget: self.budget,
                    used,
                });
            }
        }
        Ok(())
    }

    fn check_deadline(&self) -> Result<()> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(DatalogError::DeadlineExceeded {
                    limit_ms: self.deadline_limit_ms,
                });
            }
        }
        Ok(())
    }
}

/// Per-worker tick counter over an [`EvalGuard`].
///
/// Lives inside each evaluation scratch, so the join inner loop pays one
/// increment per row and one per emitted tuple; the guard itself is
/// consulted every [`CHECK_INTERVAL`] ticks and once more at the end of
/// each rule application (`flush`).
#[derive(Debug, Default)]
pub(crate) struct GuardCursor {
    ticks: u32,
    emitted: usize,
    /// Join probes (rows enumerated from scans) since the last take.
    probes: u64,
    /// Flushes so far; the clock is read on every
    /// [`TIME_CHECK_PERIOD`]-th flush, the first one included so an
    /// already-elapsed deadline trips on the very first check.
    flushes: u32,
}

impl GuardCursor {
    pub(crate) fn new() -> Self {
        GuardCursor::default()
    }

    /// Record one enumerated row of a scan.
    #[inline]
    pub(crate) fn probe(&mut self, guard: &EvalGuard) -> Result<()> {
        self.probes += 1;
        self.tick(1, guard)
    }

    /// Record `n` rows enumerated at once (negation probes).
    #[inline]
    pub(crate) fn probe_n(&mut self, n: u32, guard: &EvalGuard) -> Result<()> {
        self.probes += u64::from(n);
        self.tick(n, guard)
    }

    /// Record one emitted head tuple.
    #[inline]
    pub(crate) fn emit(&mut self, guard: &EvalGuard) -> Result<()> {
        self.emitted += 1;
        self.tick(1, guard)
    }

    #[inline]
    fn tick(&mut self, n: u32, guard: &EvalGuard) -> Result<()> {
        self.ticks = self.ticks.saturating_add(n);
        if self.ticks >= CHECK_INTERVAL {
            self.flush(guard)
        } else {
            Ok(())
        }
    }

    /// Flush locally counted work into the guard and run the full check.
    /// Called at the end of every rule application so short evaluations
    /// still contribute to the round budget.
    pub(crate) fn flush(&mut self, guard: &EvalGuard) -> Result<()> {
        self.ticks = 0;
        let emitted = std::mem::take(&mut self.emitted);
        let check_time = self.flushes.is_multiple_of(TIME_CHECK_PERIOD);
        self.flushes = self.flushes.wrapping_add(1);
        guard.check(emitted, check_time)
    }

    /// Take (and reset) the accumulated probe counter.
    pub(crate) fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_shares_state_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn unlimited_guard_never_trips() {
        let g = EvalGuard::unlimited();
        let mut c = GuardCursor::new();
        for _ in 0..(CHECK_INTERVAL * 3) {
            c.emit(&g).unwrap();
        }
        c.flush(&g).unwrap();
    }

    #[test]
    fn budget_trips_inside_a_single_application() {
        let g = EvalGuard::new(None, 10, None);
        g.begin_round(4);
        let mut c = GuardCursor::new();
        let mut result = Ok(());
        for _ in 0..=CHECK_INTERVAL {
            result = c.emit(&g);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(
            result,
            Err(DatalogError::BudgetExceeded { budget: 10, .. })
        ));
    }

    #[test]
    fn cancelled_guard_reports_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let g = EvalGuard::new(None, usize::MAX, Some(token));
        let mut c = GuardCursor::new();
        assert!(matches!(c.flush(&g), Err(DatalogError::Cancelled)));
    }

    #[test]
    fn elapsed_deadline_reports_deadline_exceeded() {
        let g = EvalGuard::new(Some(Duration::from_millis(0)), usize::MAX, None);
        std::thread::sleep(Duration::from_millis(2));
        let mut c = GuardCursor::new();
        assert!(matches!(
            c.flush(&g),
            Err(DatalogError::DeadlineExceeded { limit_ms: 0 })
        ));
    }

    #[test]
    fn probes_accumulate_and_reset() {
        let g = EvalGuard::unlimited();
        let mut c = GuardCursor::new();
        c.probe(&g).unwrap();
        c.probe_n(4, &g).unwrap();
        assert_eq!(c.take_probes(), 5);
        assert_eq!(c.take_probes(), 0);
    }
}
