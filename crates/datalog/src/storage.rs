//! Columnar fact storage: relations as column-major segments with
//! sorted-run permutation indexes, and the database of all relations.
//!
//! # Layout
//!
//! A [`Relation`] stores its tuples column-major: every column is a
//! sequence of [`Const`] cells addressed by a dense `u32` row id. Rows
//! are grouped into fixed-size *segments* — once a segment fills it is
//! sealed behind an `Arc` and never mutated again, so cloning a relation
//! (the copy-on-write path behind MVCC generations) shares every sealed
//! segment and deep-copies only the short mutable tail.
//!
//! # Indexes
//!
//! Each column carries a *sorted permutation index*: row ids ordered by
//! cell value, maintained as a small set of sorted runs merged with a
//! doubling (binary-counter) discipline, plus an unsorted tail of the
//! most recent rows that probes scan linearly. Indexes are built
//! **lazily**: inserts never sort anything; the evaluator declares which
//! columns its compiled plans will probe and seals them up to date at
//! round boundaries ([`Relation::ensure_index`], driven by
//! `Database::ensure_index_id`). Relations that are only ever written —
//! the common case for derived predicates — never pay for an index at
//! all, while probed columns amortize to O(log n) sealing work per
//! insert. A point probe is one binary search per run plus a bounded
//! linear scan of the unsealed tail. Runs are `Arc`-shared across clones
//! like segments are. The runs order by [`key_of`] — a cheap integral
//! total order on `Const` — not by the user-visible text order; only
//! [`Relation::sorted`] pays for text comparison.
//!
//! # Deduplication and retraction
//!
//! Duplicate detection stores row ids keyed by tuple hash, split into a
//! frozen `Arc`-shared map and a per-clone overlay of recent inserts
//! that is folded into the frozen map amortized. Retraction tombstones
//! the row (probes filter the `dead` set) and compacts the relation once
//! tombstones reach half the stored rows, so storage stays within a
//! constant factor of the live set without per-retract index surgery.

use std::collections::hash_map::Entry;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fx::{FxHashMap, FxHashSet, FxHasher};
use crate::term::{Const, SymId};

/// A stored fact: one tuple of constants.
///
/// Facts are boxed slices of `Copy` constants: a single allocation per
/// fact, no capacity slack, and equality/hash by value. Inside a
/// [`Relation`] the cells live column-major; `Fact` is the interchange
/// format at the API boundary (inserts, deltas, query answers).
pub type Fact = Box<[Const]>;

/// A dense list of same-arity facts stored back-to-back in one flat
/// buffer — the interchange format between the executors and the
/// evaluation loops (derived tuples out, semi-naive deltas back in).
/// One bulk allocation amortized over thousands of facts, where a
/// `Vec<Fact>` pays a boxed-slice allocation per fact.
#[derive(Clone, Debug, Default)]
pub(crate) struct FactBuf {
    arity: usize,
    rows: usize,
    cells: Vec<Const>,
}

impl FactBuf {
    pub(crate) fn len(&self) -> usize {
        self.rows
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub(crate) fn clear(&mut self) {
        self.rows = 0;
        self.cells.clear();
    }

    /// Row `i` as a cell slice.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[Const] {
        &self.cells[i * self.arity..(i + 1) * self.arity]
    }

    /// Append one fact. The first row after construction (or
    /// [`FactBuf::clear`]) fixes the buffer's arity.
    #[inline]
    pub(crate) fn push_row(&mut self, cells: impl IntoIterator<Item = Const>) {
        let before = self.cells.len();
        self.cells.extend(cells);
        if self.rows == 0 {
            self.arity = self.cells.len();
        } else {
            debug_assert_eq!(self.cells.len() - before, self.arity, "arity mismatch");
        }
        self.rows += 1;
    }

    pub(crate) fn rows(&self) -> impl Iterator<Item = &[Const]> {
        (0..self.rows).map(move |i| self.row(i))
    }
}

/// Rows per sealed segment; a power of two so row → segment is a shift.
const SEG_SHIFT: u32 = 12;
const SEG_ROWS: u32 = 1 << SEG_SHIFT;
/// Most recent rows a column index may leave unsorted before
/// [`Database::ensure_index_id`] reseals the column. Probes scan this
/// tail linearly, so it bounds the per-probe linear work between seals.
const INDEX_TAIL_MAX: u32 = 128;

/// Source of unique relation identities (see [`Relation::version`]).
static NEXT_RELATION_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_relation_id() -> u64 {
    NEXT_RELATION_ID.fetch_add(1, Ordering::Relaxed)
}
/// Minimum overlay size before it is folded into the frozen dedup map.
const FOLD_MIN: usize = 4096;
/// Minimum tombstones before compaction is considered.
const COMPACT_MIN: usize = 1024;

fn fact_hash(fact: &[Const]) -> u64 {
    let mut h = FxHasher::default();
    fact.hash(&mut h);
    h.finish()
}

/// Row ids sharing one tuple hash. Collisions are rare, so almost every
/// entry is a single row — the inline variant avoids a heap allocation
/// per stored fact.
#[derive(Clone)]
enum Rows {
    One(u32),
    Many(Vec<u32>),
}

impl Rows {
    fn push(&mut self, row: u32) {
        match self {
            Rows::One(r) => *self = Rows::Many(vec![*r, row]),
            Rows::Many(v) => v.push(row),
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            Rows::One(r) => std::slice::from_ref(r),
            Rows::Many(v) => v,
        }
    }
}

/// A cheap integral total order on `Const` for the sorted runs:
/// discriminant, then the raw interned id (symbols) or the sign-flipped
/// two's complement (integers). Equality coincides with `Const`
/// equality, but the order differs from the user-visible `Ord` (which
/// compares symbol *text*) — the runs only need a fixed total order, and
/// comparing two `u128`s is far cheaper than two string compares.
#[inline]
pub(crate) fn key_of(c: Const) -> u128 {
    match c {
        Const::Sym(s) => s.index() as u128,
        #[allow(clippy::cast_sign_loss)]
        Const::Int(i) => (1u128 << 64) | u128::from((i as u64) ^ (1u64 << 63)),
    }
}

/// First index in `xs[from..]` where `pred` stops holding, found by
/// exponential (galloping) search: O(log distance) rather than
/// O(log len), which is what makes repeated forward seeks over one run
/// sum to a linear merge.
fn gallop<T>(xs: &[T], from: usize, mut pred: impl FnMut(&T) -> bool) -> usize {
    if from >= xs.len() || !pred(&xs[from]) {
        return from;
    }
    let mut lo = from; // pred holds at lo
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < xs.len() && pred(&xs[hi]) {
        lo = hi;
        step *= 2;
        hi = lo.saturating_add(step);
    }
    let hi = hi.min(xs.len());
    lo + 1 + xs[lo + 1..hi].partition_point(|x| pred(x))
}

/// One sealed, immutable row group: `SEG_ROWS` rows of every column,
/// column-major, shared by `Arc` across copy-on-write clones.
struct Segment {
    cols: Box<[Box<[Const]>]>,
}

/// Per-column permutation index: disjoint sorted runs covering rows
/// `0..covered`, each ordered by `(key_of(cell), row)`, newest last.
#[derive(Clone, Default)]
struct ColIndex {
    runs: Vec<Arc<[u32]>>,
    covered: u32,
}

/// A set of facts of a single predicate in columnar storage.
///
/// Bottom-up rule evaluation probes relations either with a binding
/// pattern ([`Relation::matching`]) or — on the batched join path — with
/// row-id probes against the per-column sorted indexes
/// (`probe_rows`, `col_cursor`; crate-private).
pub struct Relation {
    arity: Option<usize>,
    /// Sealed immutable segments; shared (not copied) by `clone`.
    sealed: Vec<Arc<Segment>>,
    /// The mutable tail segment: one short column `Vec` per column.
    tail: Vec<Vec<Const>>,
    /// Total stored rows, live and tombstoned.
    total: u32,
    /// Tombstoned row ids (retracted but not yet compacted away).
    dead: FxHashSet<u32>,
    /// Frozen dedup map (`tuple hash → row ids`), shared by `clone`;
    /// rows listed here may be tombstoned — lookups filter `dead`.
    frozen: Arc<FxHashMap<u64, Rows>>,
    /// Recent insertions not yet folded into `frozen`; per-clone.
    overlay: FxHashMap<u64, Rows>,
    /// One sorted permutation index per column.
    indexes: Vec<ColIndex>,
    /// Identity for [`Relation::version`]; every clone gets a fresh one,
    /// so cached derivations keyed by version can never confuse two
    /// lineages that happen to share a mutation count.
    id: u64,
    /// Successful inserts + retracts on this lineage (monotone).
    mutations: u64,
}

impl Default for Relation {
    fn default() -> Self {
        Relation {
            arity: None,
            sealed: Vec::new(),
            tail: Vec::new(),
            total: 0,
            dead: FxHashSet::default(),
            frozen: Arc::default(),
            overlay: FxHashMap::default(),
            indexes: Vec::new(),
            id: fresh_relation_id(),
            mutations: 0,
        }
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            sealed: self.sealed.clone(),
            tail: self.tail.clone(),
            total: self.total,
            dead: self.dead.clone(),
            frozen: Arc::clone(&self.frozen),
            overlay: self.overlay.clone(),
            indexes: self.indexes.clone(),
            id: fresh_relation_id(),
            mutations: self.mutations,
        }
    }
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The arity, once at least one fact has been inserted.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.total as usize - self.dead.len()
    }

    /// Whether the relation holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a fact; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the fact's arity differs from previously inserted facts —
    /// arity consistency is validated upstream by [`crate::Program`].
    pub fn insert(&mut self, fact: impl Into<Fact>) -> bool {
        self.insert_if_new(&fact.into())
    }

    /// Insert a fact given by reference; returns `true` if it was new.
    /// Cells are copied into the column tails only when the fact is
    /// genuinely new; duplicates (the common case near the fixpoint)
    /// cost one hash lookup.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, as [`Relation::insert`] does.
    pub fn insert_if_new(&mut self, fact: &[Const]) -> bool {
        self.prepare(fact.len());
        let hash = fact_hash(fact);
        if self.find_live(hash, fact).is_some() {
            return false;
        }
        let row = self.total;
        assert!(row < u32::MAX, "relation row overflow");
        for (col, c) in fact.iter().enumerate() {
            self.tail[col].push(*c);
        }
        self.total += 1;
        self.mutations += 1;
        match self.overlay.entry(hash) {
            Entry::Vacant(e) => {
                e.insert(Rows::One(row));
            }
            Entry::Occupied(mut e) => e.get_mut().push(row),
        }
        if self.total & (SEG_ROWS - 1) == 0 {
            self.seal_segment();
        }
        self.fold_overlay();
        true
    }

    /// A value that changes whenever this relation's contents may have
    /// changed: the lineage id (fresh per clone) plus the mutation count.
    /// Used to validate cached per-plan join tables across evaluation
    /// rounds.
    #[inline]
    pub(crate) fn version(&self) -> u128 {
        (u128::from(self.id) << 64) | u128::from(self.mutations)
    }

    /// Rows not yet covered by `col`'s sorted runs.
    pub(crate) fn index_lag(&self, col: usize) -> u32 {
        self.indexes.get(col).map_or(0, |i| self.total - i.covered)
    }

    /// Whether any column index has been materialized (probed at least
    /// once) but has uncovered rows in its unsorted tail.
    pub(crate) fn has_unsealed_index(&self) -> bool {
        self.indexes
            .iter()
            .any(|i| !i.runs.is_empty() && i.covered < self.total)
    }

    /// Seal every materialized column index. Columns never probed by any
    /// plan stay unindexed and keep costing nothing.
    pub(crate) fn seal_materialized_indexes(&mut self) {
        for col in 0..self.indexes.len() {
            if !self.indexes[col].runs.is_empty() && self.indexes[col].covered < self.total {
                self.seal_runs_col(col);
            }
        }
    }

    /// Seal `col`'s uncovered rows into its sorted-run index. Called by
    /// the evaluator for the columns its plans actually probe; columns
    /// that are never probed never pay for sorting.
    pub(crate) fn ensure_index(&mut self, col: usize) {
        if self
            .indexes
            .get(col)
            .is_some_and(|i| i.covered < self.total)
        {
            self.seal_runs_col(col);
        }
    }

    fn prepare(&mut self, arity: usize) {
        match self.arity {
            None => {
                self.arity = Some(arity);
                self.tail = vec![Vec::new(); arity];
                self.indexes = vec![ColIndex::default(); arity];
            }
            Some(a) => assert_eq!(a, arity, "arity mismatch on insert"),
        }
    }

    /// Move the full tail segment behind an `Arc`; later clones share it.
    fn seal_segment(&mut self) {
        let cols: Box<[Box<[Const]>]> = self
            .tail
            .iter_mut()
            .map(|c| {
                debug_assert_eq!(c.len(), SEG_ROWS as usize);
                mem::replace(c, Vec::with_capacity(SEG_ROWS as usize)).into_boxed_slice()
            })
            .collect();
        self.sealed.push(Arc::new(Segment { cols }));
    }

    /// Sort `col`'s uncovered index tail into a fresh run, then merge
    /// trailing runs while the newest is at least as long as its
    /// predecessor — the binary-counter discipline that keeps the run
    /// count logarithmic and the total merge work O(n log n).
    fn seal_runs_col(&mut self, col: usize) {
        let mut idx = mem::take(&mut self.indexes[col]);
        let mut run: Vec<u32> = (idx.covered..self.total).collect();
        run.sort_unstable_by_key(|&r| (key_of(self.cell(r, col)), r));
        idx.covered = self.total;
        idx.runs.push(run.into());
        while idx.runs.len() >= 2
            && idx.runs[idx.runs.len() - 1].len() >= idx.runs[idx.runs.len() - 2].len()
        {
            let b = idx.runs.pop().expect("run present");
            let a = idx.runs.pop().expect("run present");
            idx.runs.push(self.merge_runs(&a, &b, col));
        }
        self.indexes[col] = idx;
    }

    fn merge_runs(&self, a: &[u32], b: &[u32], col: usize) -> Arc<[u32]> {
        let key = |r: u32| (key_of(self.cell(r, col)), r);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if key(a[i]) <= key(b[j]) {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out.into()
    }

    /// Fold the overlay into the frozen dedup map once it is both large
    /// and a noticeable fraction of the frozen map. `Arc::make_mut`
    /// copies the frozen map only when a clone still shares it; folds
    /// are rare enough (every quarter-growth at most) to amortize that.
    fn fold_overlay(&mut self) {
        if self.overlay.len() >= FOLD_MIN && self.overlay.len() * 4 >= self.frozen.len() {
            let frozen = Arc::make_mut(&mut self.frozen);
            for (h, rows) in self.overlay.drain() {
                match frozen.entry(h) {
                    Entry::Vacant(e) => {
                        e.insert(rows);
                    }
                    Entry::Occupied(mut e) => {
                        for &r in rows.as_slice() {
                            e.get_mut().push(r);
                        }
                    }
                }
            }
        }
    }

    /// The live row storing exactly `fact`, if any.
    fn find_live(&self, hash: u64, fact: &[Const]) -> Option<u32> {
        let scan = |rows: &[u32]| {
            rows.iter()
                .copied()
                .find(|&r| !self.is_dead(r) && self.row_eq(r, fact))
        };
        if let Some(rows) = self.frozen.get(&hash) {
            if let Some(r) = scan(rows.as_slice()) {
                return Some(r);
            }
        }
        self.overlay
            .get(&hash)
            .and_then(|rows| scan(rows.as_slice()))
    }

    #[inline]
    fn row_eq(&self, row: u32, fact: &[Const]) -> bool {
        (0..fact.len()).all(|c| self.cell(row, c) == fact[c])
    }

    #[inline]
    fn is_dead(&self, row: u32) -> bool {
        !self.dead.is_empty() && self.dead.contains(&row)
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub(crate) fn cell(&self, row: u32, col: usize) -> Const {
        let seg = (row >> SEG_SHIFT) as usize;
        if let Some(s) = self.sealed.get(seg) {
            s.cols[col][(row & (SEG_ROWS - 1)) as usize]
        } else {
            self.tail[col][row as usize - (self.sealed.len() << SEG_SHIFT)]
        }
    }

    /// Materialize one stored row as a [`Fact`].
    pub(crate) fn row_fact(&self, row: u32) -> Fact {
        (0..self.arity.unwrap_or(0))
            .map(|c| self.cell(row, c))
            .collect()
    }

    /// Append the live rows whose `col` cell equals `value`, via the
    /// column's sorted runs plus a linear scan of the index tail.
    pub(crate) fn probe_rows(&self, col: usize, value: Const, out: &mut Vec<u32>) {
        let k = key_of(value);
        let idx = &self.indexes[col];
        for run in &idx.runs {
            let lo = run.partition_point(|&r| key_of(self.cell(r, col)) < k);
            for &r in &run[lo..] {
                if self.cell(r, col) != value {
                    break;
                }
                if !self.is_dead(r) {
                    out.push(r);
                }
            }
        }
        for r in idx.covered..self.total {
            if self.cell(r, col) == value && !self.is_dead(r) {
                out.push(r);
            }
        }
    }

    /// Estimated number of rows (tombstones included) whose `col` cell
    /// equals `value` — the selectivity estimate driving probe-column
    /// choice.
    pub(crate) fn count_eq(&self, col: usize, value: Const) -> usize {
        let k = key_of(value);
        let idx = &self.indexes[col];
        let mut n = 0;
        for run in &idx.runs {
            let lo = run.partition_point(|&r| key_of(self.cell(r, col)) < k);
            n += run[lo..].partition_point(|&r| key_of(self.cell(r, col)) == k);
        }
        n + (idx.covered..self.total)
            .filter(|&r| self.cell(r, col) == value)
            .count()
    }

    /// Append every live row id.
    pub(crate) fn live_rows(&self, out: &mut Vec<u32>) {
        out.extend((0..self.total).filter(|&r| !self.is_dead(r)));
    }

    /// A merge-join cursor over one column's sorted index: successive
    /// [`ColCursor::seek`] calls with non-decreasing keys advance each
    /// run's position monotonically (galloping), so probing a sorted
    /// batch of keys costs one linear merge rather than a binary search
    /// per key.
    pub(crate) fn col_cursor(&self, col: usize) -> ColCursor<'_> {
        let idx = &self.indexes[col];
        let mut tail: Vec<(u128, u32)> = (idx.covered..self.total)
            .map(|r| (key_of(self.cell(r, col)), r))
            .collect();
        tail.sort_unstable();
        ColCursor {
            rel: self,
            col,
            pos: vec![0; idx.runs.len()],
            tail,
            tail_pos: 0,
        }
    }

    /// Retract a fact; returns `true` if it was present.
    ///
    /// The row is tombstoned rather than moved — sorted runs make
    /// id-patching (the old swap-remove scheme) too expensive — and the
    /// relation compacts once tombstones reach half the stored rows.
    /// When the last fact is retracted the relation returns to its
    /// pristine state (arity forgotten), so a later insert may legally
    /// use a different arity.
    pub fn retract(&mut self, fact: &[Const]) -> bool {
        if self.arity != Some(fact.len()) {
            return false;
        }
        let hash = fact_hash(fact);
        let Some(row) = self.find_live(hash, fact) else {
            return false;
        };
        self.dead.insert(row);
        self.mutations += 1;
        if self.is_empty() {
            *self = Relation::default();
            return true;
        }
        if self.dead.len() >= COMPACT_MIN && self.dead.len() * 2 >= self.total as usize {
            self.compact();
        }
        true
    }

    /// Rebuild storage with tombstoned rows dropped, in storage order.
    /// Segments, indexes, and the dedup map are rebuilt from scratch;
    /// the cost is amortized against the retractions that created the
    /// tombstones.
    fn compact(&mut self) {
        let Some(arity) = self.arity else { return };
        let mut fresh = Relation::default();
        let mut buf: Vec<Const> = Vec::with_capacity(arity);
        for row in 0..self.total {
            if self.is_dead(row) {
                continue;
            }
            buf.clear();
            for c in 0..arity {
                buf.push(self.cell(row, c));
            }
            fresh.insert_if_new(&buf);
        }
        fresh.arity = Some(arity);
        if fresh.tail.is_empty() {
            fresh.tail = vec![Vec::new(); arity];
            fresh.indexes = vec![ColIndex::default(); arity];
        }
        *self = fresh;
    }

    /// Whether the relation contains exactly this fact.
    pub fn contains(&self, fact: &[Const]) -> bool {
        self.arity == Some(fact.len()) && self.find_live(fact_hash(fact), fact).is_some()
    }

    /// Iterate over all live facts, materialized row by row in storage
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        (0..self.total)
            .filter(|&r| !self.is_dead(r))
            .map(|r| self.row_fact(r))
    }

    /// Facts matching a binding pattern: `pattern[i] = Some(c)` requires
    /// column `i` to equal `c`. The most selective bound column (by
    /// index estimate) drives the probe; the rest post-filter. Rows are
    /// yielded in no particular order; every externally visible ordering
    /// goes through [`Relation::sorted`].
    pub fn matching(&self, pattern: &[Option<Const>]) -> impl Iterator<Item = Fact> + '_ {
        let mut rows: Vec<u32> = Vec::new();
        if self.arity == Some(pattern.len()) {
            let driver = pattern
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|c| (i, c)))
                .min_by_key(|&(i, c)| self.count_eq(i, c));
            match driver {
                Some((col, c)) => self.probe_rows(col, c, &mut rows),
                None => self.live_rows(&mut rows),
            }
            rows.retain(|&r| {
                pattern
                    .iter()
                    .enumerate()
                    .all(|(i, p)| p.is_none_or(|c| self.cell(r, i) == c))
            });
        }
        rows.into_iter().map(|r| self.row_fact(r))
    }

    /// Facts sorted lexicographically — deterministic output order for
    /// printing and testing.
    pub fn sorted(&self) -> Vec<Fact> {
        let mut out: Vec<Fact> = self.iter().collect();
        out.sort();
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} facts)", self.len())
    }
}

/// See [`Relation::col_cursor`].
pub(crate) struct ColCursor<'a> {
    rel: &'a Relation,
    col: usize,
    /// Per-run forward position (monotone under sorted seeks).
    pos: Vec<usize>,
    /// `(key, row)` for rows not yet covered by a run, sorted.
    tail: Vec<(u128, u32)>,
    tail_pos: usize,
}

impl ColCursor<'_> {
    /// Append the live rows whose cell equals `value`. Successive calls
    /// must present non-decreasing `key_of(value)`.
    pub(crate) fn seek(&mut self, value: Const, out: &mut Vec<u32>) {
        let k = key_of(value);
        let idx = &self.rel.indexes[self.col];
        for (run, p) in idx.runs.iter().zip(&mut self.pos) {
            *p = gallop(run, *p, |&r| key_of(self.rel.cell(r, self.col)) < k);
            while let Some(&r) = run.get(*p) {
                if self.rel.cell(r, self.col) != value {
                    break;
                }
                *p += 1;
                if !self.rel.is_dead(r) {
                    out.push(r);
                }
            }
        }
        let t = &mut self.tail_pos;
        *t = gallop(&self.tail, *t, |&(tk, _)| tk < k);
        while let Some(&(tk, r)) = self.tail.get(*t) {
            if tk != k {
                break;
            }
            *t += 1;
            if !self.rel.is_dead(r) {
                out.push(r);
            }
        }
    }
}

/// A database: all relations, keyed by interned predicate id.
///
/// Lookups by `&str` intern the name once; hot paths inside the engine
/// use the `*_id` variants to skip the symbol-table round trip entirely.
/// Iteration (`relations`, `predicates`) stays in name order so printed
/// output is deterministic and identical to the previous
/// `BTreeMap<Arc<str>, _>` representation.
///
/// Relations are [`Arc`]-shared: `Database::clone` is O(number of
/// relations) and shares every segment, index run, and dedup table with
/// the original. Mutation goes through [`Arc::make_mut`], which detaches
/// only the relations a writer actually touches — and a detach itself is
/// cheap, copying the short mutable tail, the overlay, and the run/
/// segment pointer lists while continuing to share the sealed column
/// segments and the frozen dedup map. This is what makes MVCC
/// generations cheap — a committed generation can stay pinned by reader
/// [`Snapshot`](crate::Snapshot)s while the next one is built from a
/// clone.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<SymId, Arc<Relation>>,
    fact_count: usize,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The relation for `predicate`, if any fact or declaration exists.
    pub fn relation(&self, predicate: &str) -> Option<&Relation> {
        self.relations.get(&SymId::intern(predicate)).map(|r| &**r)
    }

    /// The relation for an interned predicate id, if present.
    pub fn relation_id(&self, predicate: SymId) -> Option<&Relation> {
        self.relations.get(&predicate).map(|r| &**r)
    }

    /// The relation for `predicate`, creating it if missing.
    pub fn relation_mut(&mut self, predicate: &str) -> &mut Relation {
        self.relation_mut_id(SymId::intern(predicate))
    }

    /// The relation for an interned predicate id, creating it if missing.
    ///
    /// If the relation is shared with another generation (the database
    /// was cloned), it is detached here; sealed segments and the frozen
    /// dedup map stay shared, so the detach is O(tail), not O(relation).
    pub fn relation_mut_id(&mut self, predicate: SymId) -> &mut Relation {
        Arc::make_mut(self.relations.entry(predicate).or_default())
    }

    /// Bring `predicate`'s sorted index on `col` up to date, if the
    /// column has fallen more than [`INDEX_TAIL_MAX`] rows behind.
    /// Compiled plans declare the columns they probe and the evaluator
    /// calls this at round boundaries — the trigger that makes index
    /// maintenance demand-driven. Detaches the relation (copy-on-write)
    /// only when there is sealing work to do.
    pub(crate) fn ensure_index_id(&mut self, predicate: SymId, col: usize) {
        let Some(rel) = self.relations.get_mut(&predicate) else {
            return;
        };
        if rel.index_lag(col) >= INDEX_TAIL_MAX {
            Arc::make_mut(rel).ensure_index(col);
        }
    }

    /// Seal every materialized index tail across all relations. Called
    /// before publishing this database as an immutable snapshot: readers
    /// cannot seal lazily, so shipping fully covered indexes keeps their
    /// probes on the sorted-run fast path. Detaches (copy-on-write) only
    /// relations with sealing work outstanding.
    pub fn seal_indexes(&mut self) {
        for rel in self.relations.values_mut() {
            if rel.has_unsealed_index() {
                Arc::make_mut(rel).seal_materialized_indexes();
            }
        }
    }

    /// Insert a fact; returns `true` if new.
    pub fn insert(&mut self, predicate: &str, fact: impl Into<Fact>) -> bool {
        self.insert_id(SymId::intern(predicate), fact)
    }

    /// Insert a fact under an interned predicate id; returns `true` if new.
    pub fn insert_id(&mut self, predicate: SymId, fact: impl Into<Fact>) -> bool {
        let new = self.relation_mut_id(predicate).insert(fact);
        if new {
            self.fact_count += 1;
        }
        new
    }

    /// Insert a fact by reference under an interned predicate id, copying
    /// it only when new; returns `true` if new.
    pub fn insert_if_new_id(&mut self, predicate: SymId, fact: &[Const]) -> bool {
        let new = self.relation_mut_id(predicate).insert_if_new(fact);
        if new {
            self.fact_count += 1;
        }
        new
    }

    /// Retract a fact; returns `true` if it was present.
    pub fn retract(&mut self, predicate: &str, fact: &[Const]) -> bool {
        self.retract_id(SymId::intern(predicate), fact)
    }

    /// Retract a fact under an interned predicate id; returns `true` if it
    /// was present. The relation entry itself stays registered (empty), so
    /// plans that resolved the predicate keep working.
    pub fn retract_id(&mut self, predicate: SymId, fact: &[Const]) -> bool {
        // Only detach the shared relation if the fact is actually present;
        // a no-op retract must not copy anything.
        let gone = match self.relations.get_mut(&predicate) {
            Some(rel) if rel.contains(fact) => Arc::make_mut(rel).retract(fact),
            _ => false,
        };
        if gone {
            self.fact_count -= 1;
        }
        gone
    }

    /// Reset the relation for a predicate id to empty — it stays
    /// registered, so compiled plans keep resolving it — and subtract its
    /// facts from the database total. Used by the incremental engine's
    /// per-stratum recompute fallback.
    pub fn clear_relation_id(&mut self, predicate: SymId) {
        if let Some(rel) = self.relations.get_mut(&predicate) {
            self.fact_count -= rel.len();
            // Fresh Arc rather than make_mut: the old relation may stay
            // pinned by a snapshot, and a reset needs no copy anyway.
            *rel = Arc::new(Relation::new());
        }
    }

    /// Whether the database contains this ground fact.
    pub fn contains(&self, predicate: &str, fact: &[Const]) -> bool {
        self.contains_id(SymId::intern(predicate), fact)
    }

    /// Whether the database contains this ground fact (by predicate id).
    pub fn contains_id(&self, predicate: SymId, fact: &[Const]) -> bool {
        self.relations
            .get(&predicate)
            .is_some_and(|r| r.contains(fact))
    }

    /// Total number of facts across relations.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Iterate over `(predicate, relation)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        let mut entries: Vec<(SymId, &Relation)> =
            self.relations.iter().map(|(&k, v)| (k, &**v)).collect();
        entries.sort_by_key(|&(k, _)| k);
        entries.into_iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all predicates with at least one stored relation entry.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.relations().map(|(p, _)| p)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.fact_count)?;
        for (p, r) in self.relations() {
            writeln!(f, "  {p}/{:?}: {} facts", r.arity(), r.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Const {
        Const::sym(s)
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new();
        assert!(r.insert(vec![c("a"), c("b")]));
        assert!(!r.insert(vec![c("a"), c("b")]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[c("a"), c("b")]));
        assert!(!r.contains(&[c("b"), c("a")]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new();
        r.insert(vec![c("a")]);
        r.insert(vec![c("a"), c("b")]);
    }

    #[test]
    fn matching_uses_pattern() {
        let mut r = Relation::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "c")] {
            r.insert(vec![c(x), c(y)]);
        }
        let pat = vec![Some(c("a")), None];
        let hits: Vec<_> = r.matching(&pat).collect();
        assert_eq!(hits.len(), 2);
        let pat = vec![Some(c("a")), Some(c("c"))];
        assert_eq!(r.matching(&pat).count(), 1);
        let pat = vec![None, None];
        assert_eq!(r.matching(&pat).count(), 3);
        let pat = vec![Some(c("zzz")), None];
        assert_eq!(r.matching(&pat).count(), 0);
    }

    #[test]
    fn matching_picks_selective_column() {
        let mut r = Relation::new();
        for i in 0..100 {
            r.insert(vec![c("hot"), Const::int(i)]);
        }
        r.insert(vec![c("cold"), Const::int(0)]);
        // Column 1 (selectivity 2) should drive; result must still be right.
        let pat = vec![Some(c("hot")), Some(Const::int(0))];
        assert_eq!(r.matching(&pat).count(), 1);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new();
        r.insert(vec![c("b")]);
        r.insert(vec![c("a")]);
        let sorted = r.sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!(*sorted[0], [c("a")]);
        assert_eq!(*sorted[1], [c("b")]);
    }

    #[test]
    fn database_counts() {
        let mut db = Database::new();
        assert!(db.insert("p", vec![c("a")]));
        assert!(!db.insert("p", vec![c("a")]));
        assert!(db.insert("q", vec![c("a")]));
        assert_eq!(db.fact_count(), 2);
        assert!(db.contains("p", &[c("a")]));
        assert!(!db.contains("r", &[c("a")]));
        assert_eq!(db.predicates().collect::<Vec<_>>(), vec!["p", "q"]);
    }

    #[test]
    fn retract_removes_and_reports() {
        let mut r = Relation::new();
        r.insert(vec![c("a"), c("b")]);
        r.insert(vec![c("b"), c("c")]);
        assert!(r.retract(&[c("a"), c("b")]));
        assert!(!r.retract(&[c("a"), c("b")]), "second retract is a no-op");
        assert!(!r.retract(&[c("z"), c("z")]), "absent fact");
        assert!(!r.retract(&[c("b")]), "wrong arity is not a panic");
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[c("b"), c("c")]));
        assert!(!r.contains(&[c("a"), c("b")]));
    }

    #[test]
    fn retract_keeps_probes_consistent() {
        // Tombstoned rows must be invisible to index probes and dedup.
        let mut r = Relation::new();
        for (x, y) in [("a", "b"), ("c", "d"), ("e", "f")] {
            r.insert(vec![c(x), c(y)]);
        }
        assert!(r.retract(&[c("a"), c("b")]));
        let pat = vec![Some(c("e")), None];
        let hits: Vec<_> = r.matching(&pat).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0], [c("e"), c("f")]);
        assert!(r.contains(&[c("e"), c("f")]));
        assert!(!r.insert(vec![c("e"), c("f")]), "dedup still sees it");
        assert!(!r.insert(vec![c("c"), c("d")]));
        let pat = vec![Some(c("a")), None];
        assert_eq!(r.matching(&pat).count(), 0, "tombstone is invisible");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn retract_to_empty_resets_arity() {
        let mut r = Relation::new();
        r.insert(vec![c("a"), c("b")]);
        assert!(r.retract(&[c("a"), c("b")]));
        assert!(r.is_empty());
        assert_eq!(r.arity(), None);
        // A fresh arity is legal again, exactly as on a new relation.
        assert!(r.insert(vec![c("x")]));
        assert_eq!(r.arity(), Some(1));
        assert!(r.contains(&[c("x")]));
    }

    #[test]
    fn retract_interleaved_with_insert_stays_consistent() {
        let mut r = Relation::new();
        for i in 0..20 {
            r.insert(vec![Const::int(i), Const::int(i + 1)]);
        }
        for i in (0..20).step_by(2) {
            assert!(r.retract(&[Const::int(i), Const::int(i + 1)]));
        }
        for i in 0..20 {
            let present = i % 2 == 1;
            assert_eq!(r.contains(&[Const::int(i), Const::int(i + 1)]), present);
            let pat = vec![Some(Const::int(i)), None];
            assert_eq!(r.matching(&pat).count(), usize::from(present));
        }
        // Reinsert everything; dedup must admit the retracted half only.
        let mut added = 0;
        for i in 0..20 {
            if r.insert(vec![Const::int(i), Const::int(i + 1)]) {
                added += 1;
            }
        }
        assert_eq!(added, 10);
        assert_eq!(r.len(), 20);
    }

    #[test]
    fn probes_work_across_sealed_runs_and_segments() {
        // Cross both the INDEX_TAIL_MAX run-seal and the SEG_ROWS
        // segment-seal thresholds, then verify point probes everywhere.
        let n = i64::from(SEG_ROWS) + 700;
        let mut r = Relation::new();
        for i in 0..n {
            r.insert(vec![Const::int(i), Const::int(i % 7)]);
            // Staggered seals build a genuine run cascade on column 0
            // while column 1 keeps a partial index plus unsorted tail.
            if i == 100 || i == 1000 || i == 4200 {
                r.ensure_index(0);
            }
            if i == 2000 {
                r.ensure_index(1);
            }
        }
        r.ensure_index(0);
        assert_eq!(r.index_lag(0), 0);
        assert!(r.index_lag(1) > 0, "column 1 keeps an unsealed tail");
        assert_eq!(r.len(), usize::try_from(n).expect("fits"));
        for i in [0, 1, 4095, 4096, 4097, n - 1] {
            let pat = vec![Some(Const::int(i)), None];
            assert_eq!(r.matching(&pat).count(), 1, "row {i}");
            assert!(r.contains(&[Const::int(i), Const::int(i % 7)]));
        }
        // Low-selectivity column: every residue class is fully found.
        let pat = vec![None, Some(Const::int(3))];
        let expect = (0..n).filter(|i| i % 7 == 3).count();
        assert_eq!(r.matching(&pat).count(), expect);
    }

    #[test]
    fn cursor_merges_sorted_probes() {
        let mut r = Relation::new();
        for i in 0..1000 {
            r.insert(vec![Const::int(i % 50), Const::int(i)]);
            if i == 300 || i == 600 {
                r.ensure_index(0);
            }
        }
        // Two sealed runs plus a 399-row unsorted tail: the cursor must
        // merge all three sources.
        let mut cur = r.col_cursor(0);
        let mut total = 0;
        for v in 0..50 {
            let mut rows = Vec::new();
            cur.seek(Const::int(v), &mut rows);
            assert_eq!(rows.len(), 20, "value {v}");
            assert!(rows.iter().all(|&row| r.cell(row, 0) == Const::int(v)));
            total += rows.len();
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut r = Relation::new();
        let n = 4 * i64::try_from(COMPACT_MIN).expect("fits");
        for i in 0..n {
            r.insert(vec![Const::int(i)]);
        }
        for i in 0..n {
            if i % 2 == 0 {
                assert!(r.retract(&[Const::int(i)]));
            }
        }
        // Compaction has certainly triggered: half the rows died.
        assert_eq!(r.len(), usize::try_from(n / 2).expect("fits"));
        for i in 0..n {
            assert_eq!(r.contains(&[Const::int(i)]), i % 2 == 1);
        }
        let pat = vec![Some(Const::int(1))];
        assert_eq!(r.matching(&pat).count(), 1);
    }

    #[test]
    fn clone_shares_segments_and_stays_isolated() {
        let mut r = Relation::new();
        let n = i64::from(SEG_ROWS) + 10;
        for i in 0..n {
            r.insert(vec![Const::int(i)]);
        }
        let snap = r.clone();
        // The sealed segment is shared, not copied.
        assert!(Arc::ptr_eq(&r.sealed[0], &snap.sealed[0]));
        // Mutating the original must not leak into the clone.
        r.insert(vec![Const::int(n)]);
        assert!(r.retract(&[Const::int(0)]));
        assert_eq!(snap.len(), usize::try_from(n).expect("fits"));
        assert!(snap.contains(&[Const::int(0)]));
        assert!(!snap.contains(&[Const::int(n)]));
        let pat = vec![Some(Const::int(0))];
        assert_eq!(snap.matching(&pat).count(), 1);
        assert_eq!(r.matching(&pat).count(), 0);
    }

    #[test]
    fn database_retract_tracks_fact_count() {
        let mut db = Database::new();
        db.insert("p", vec![c("a")]);
        db.insert("p", vec![c("b")]);
        db.insert("q", vec![c("a")]);
        assert!(db.retract("p", &[c("a")]));
        assert!(!db.retract("p", &[c("a")]));
        assert!(!db.retract("r", &[c("a")]), "unknown predicate");
        assert_eq!(db.fact_count(), 2);
        assert!(db.retract("q", &[c("a")]));
        assert_eq!(db.fact_count(), 1);
        // The emptied relation stays registered.
        assert!(db.relation("q").is_some());
        assert!(db.relation("q").unwrap().is_empty());
    }

    #[test]
    fn id_paths_agree_with_str_paths() {
        let mut db = Database::new();
        let p = SymId::intern("p");
        assert!(db.insert_id(p, vec![c("a")]));
        assert!(db.contains("p", &[c("a")]));
        assert!(db.contains_id(p, &[c("a")]));
        assert_eq!(db.relation_id(p).unwrap().len(), 1);
        assert!(std::ptr::eq(
            db.relation("p").unwrap(),
            db.relation_id(p).unwrap()
        ));
    }
}

/// Model-based property tests for the per-column sorted permutation
/// indexes: after any interleaving of inserts, retracts, partial index
/// seals, and COW clones — sized to cross the segment-seal
/// ([`SEG_ROWS`]), overlay-fold ([`FOLD_MIN`]), and tombstone-compaction
/// ([`COMPACT_MIN`]) thresholds — every index run must stay sorted and
/// jointly partition `0..covered`, and both probe paths
/// ([`Relation::probe_rows`], [`ColCursor::seek`]) must agree with a
/// naive scan of the column segments.
#[cfg(test)]
mod index_properties {
    use super::*;
    use proptest::prelude::*;

    fn nv(i: usize) -> Const {
        Const::sym(format!("v{i}"))
    }

    /// Check every sorted-run invariant plus probe/cursor agreement with
    /// a naive segment scan, for every column, at whatever index
    /// coverage the relation currently has (tail paths included).
    fn assert_indexes_agree(rel: &Relation) {
        let Some(arity) = rel.arity() else { return };
        let mut live = Vec::new();
        rel.live_rows(&mut live);
        for col in 0..arity {
            let idx = &rel.indexes[col];
            // Each run is strictly sorted by (key, row); together the
            // runs are a permutation of the covered prefix.
            let mut union: Vec<u32> = Vec::new();
            for run in &idx.runs {
                for w in run.windows(2) {
                    let a = (key_of(rel.cell(w[0], col)), w[0]);
                    let b = (key_of(rel.cell(w[1], col)), w[1]);
                    assert!(a < b, "run out of order on col {col}: {a:?} !< {b:?}");
                }
                union.extend_from_slice(run);
            }
            union.sort_unstable();
            assert_eq!(
                union,
                (0..idx.covered).collect::<Vec<u32>>(),
                "runs must partition 0..covered on col {col}"
            );
            // Ground truth per value, straight from the segment cells.
            let mut truth: FxHashMap<Const, Vec<u32>> = FxHashMap::default();
            for &r in &live {
                truth.entry(rel.cell(r, col)).or_default().push(r);
            }
            // The cursor contract requires non-decreasing keys.
            let mut values: Vec<Const> = truth.keys().copied().collect();
            values.sort_unstable_by_key(|&v| key_of(v));
            let mut cur = rel.col_cursor(col);
            for &v in &values {
                let mut probed = Vec::new();
                rel.probe_rows(col, v, &mut probed);
                probed.sort_unstable();
                assert_eq!(probed, truth[&v], "probe_rows col {col} value {v:?}");
                // count_eq counts tombstones too: an upper bound.
                assert!(rel.count_eq(col, v) >= probed.len());
                let mut sought = Vec::new();
                cur.seek(v, &mut sought);
                sought.sort_unstable();
                assert_eq!(sought, truth[&v], "cursor seek col {col} value {v:?}");
            }
            let mut probed = Vec::new();
            rel.probe_rows(col, Const::sym("absent-key"), &mut probed);
            assert!(
                probed.is_empty(),
                "absent value must probe empty on col {col}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn sorted_indexes_agree_with_segments(
            preload in (SEG_ROWS as usize + 40)..(SEG_ROWS as usize + 260),
            ops in proptest::collection::vec((0u8..100, 0usize..12, 0usize..64), 1..48),
        ) {
            // Preload distinct facts past the SEG_ROWS segment seal and
            // the FOLD_MIN overlay fold; col 0 is 12-valued (fat key
            // groups), col 1 is unique per row.
            let mut rel = Relation::new();
            for i in 0..preload {
                rel.insert_if_new(&[nv(i % 12), Const::int(i as i64)]);
            }
            rel.ensure_index(0);
            assert_indexes_agree(&rel); // col 1 unsealed: pure tail path

            // COW generation pinned mid-history.
            let snapshot = rel.clone();
            let snap_facts = snapshot.sorted();

            for &(w, x, y) in &ops {
                let f = [nv(x), Const::int(y as i64)];
                match w {
                    0..=44 => {
                        rel.insert_if_new(&f);
                    }
                    45..=84 => {
                        rel.retract(&f);
                    }
                    _ => rel.ensure_index(usize::from(w) % 2),
                }
            }
            rel.ensure_index(0);
            rel.ensure_index(1);
            assert_indexes_agree(&rel);

            // Mass-retract half the preload: crosses COMPACT_MIN, so the
            // relation rebuilds and the indexes restart from scratch.
            for i in 0..preload / 2 {
                rel.retract(&[nv(i % 12), Const::int(i as i64)]);
            }
            rel.ensure_index(0);
            assert_indexes_agree(&rel);

            // The pinned generation never saw any of it, and sealing its
            // own indexes is still consistent and content-preserving.
            let mut snap = snapshot;
            prop_assert_eq!(&snap.sorted(), &snap_facts);
            snap.ensure_index(0);
            snap.ensure_index(1);
            assert_indexes_agree(&snap);
            prop_assert_eq!(&snap.sorted(), &snap_facts);
        }
    }
}
