//! Fact storage: relations with hash indexes, and the database of all
//! relations.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::term::Const;

/// A stored fact: one tuple of constants.
pub type Fact = Vec<Const>;

/// A set of facts of a single predicate, with lazily built per-column
/// hash indexes to accelerate joins.
///
/// Bottom-up rule evaluation probes relations with a *binding pattern*
/// (some columns bound to constants). `Relation::matching` serves such
/// probes from the index of the first bound column and post-filters the
/// rest, which makes the common join shapes (key-bound probes produced by
/// the MultiLog reduction axioms) sub-linear.
#[derive(Clone, Default)]
pub struct Relation {
    arity: Option<usize>,
    facts: Vec<Fact>,
    /// Set view of `facts` for O(1) duplicate checks; stores indices.
    dedup: HashSet<Fact>,
    /// `indexes[col][constant]` = row ids having `constant` at `col`.
    indexes: Vec<HashMap<Const, Vec<usize>>>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The arity, once at least one fact has been inserted.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the relation holds no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Insert a fact; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the fact's arity differs from previously inserted facts —
    /// arity consistency is validated upstream by [`crate::Program`].
    pub fn insert(&mut self, fact: Fact) -> bool {
        match self.arity {
            None => {
                self.arity = Some(fact.len());
                self.indexes = (0..fact.len()).map(|_| HashMap::new()).collect();
            }
            Some(a) => assert_eq!(a, fact.len(), "arity mismatch on insert"),
        }
        if !self.dedup.insert(fact.clone()) {
            return false;
        }
        let row = self.facts.len();
        for (col, c) in fact.iter().enumerate() {
            self.indexes[col].entry(c.clone()).or_default().push(row);
        }
        self.facts.push(fact);
        true
    }

    /// Whether the relation contains exactly this fact.
    pub fn contains(&self, fact: &[Const]) -> bool {
        self.dedup.contains(fact)
    }

    /// Iterate over all facts.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Facts matching a binding pattern: `pattern[i] = Some(c)` requires
    /// column `i` to equal `c`. Rows are yielded in insertion order.
    pub fn matching<'a>(
        &'a self,
        pattern: &'a [Option<Const>],
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        // Pick the most selective bound column to drive the scan.
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|c| (i, c)))
            .filter_map(|(i, c)| {
                self.indexes
                    .get(i)
                    .map(|idx| (i, c, idx.get(c).map_or(0, Vec::len)))
            })
            .min_by_key(|&(_, _, n)| n);
        match best {
            Some((col, c, _)) => {
                let rows = self.indexes[col].get(c).map(Vec::as_slice).unwrap_or(&[]);
                Box::new(
                    rows.iter()
                        .map(move |&r| &self.facts[r])
                        .filter(move |f| Self::fact_matches(f, pattern)),
                )
            }
            None => Box::new(
                self.facts
                    .iter()
                    .filter(move |f| Self::fact_matches(f, pattern)),
            ),
        }
    }

    fn fact_matches(fact: &[Const], pattern: &[Option<Const>]) -> bool {
        fact.len() == pattern.len()
            && fact
                .iter()
                .zip(pattern)
                .all(|(c, p)| p.as_ref().is_none_or(|pc| pc == c))
    }

    /// Facts sorted lexicographically — deterministic output order for
    /// printing and testing.
    pub fn sorted(&self) -> Vec<Fact> {
        let mut out = self.facts.clone();
        out.sort();
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} facts)", self.facts.len())
    }
}

/// A database: all relations, keyed by predicate name.
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<Arc<str>, Relation>,
    fact_count: usize,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The relation for `predicate`, if any fact or declaration exists.
    pub fn relation(&self, predicate: &str) -> Option<&Relation> {
        self.relations.get(predicate)
    }

    /// The relation for `predicate`, creating it if missing.
    pub fn relation_mut(&mut self, predicate: &str) -> &mut Relation {
        if !self.relations.contains_key(predicate) {
            self.relations.insert(Arc::from(predicate), Relation::new());
        }
        self.relations.get_mut(predicate).expect("just inserted")
    }

    /// Insert a fact; returns `true` if new.
    pub fn insert(&mut self, predicate: &str, fact: Fact) -> bool {
        let new = self.relation_mut(predicate).insert(fact);
        if new {
            self.fact_count += 1;
        }
        new
    }

    /// Whether the database contains this ground fact.
    pub fn contains(&self, predicate: &str, fact: &[Const]) -> bool {
        self.relations
            .get(predicate)
            .is_some_and(|r| r.contains(fact))
    }

    /// Total number of facts across relations.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Iterate over `(predicate, relation)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Names of all predicates with at least one stored relation entry.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|k| k.as_ref())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.fact_count)?;
        for (p, r) in self.relations() {
            writeln!(f, "  {p}/{:?}: {} facts", r.arity(), r.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Const {
        Const::sym(s)
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new();
        assert!(r.insert(vec![c("a"), c("b")]));
        assert!(!r.insert(vec![c("a"), c("b")]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[c("a"), c("b")]));
        assert!(!r.contains(&[c("b"), c("a")]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new();
        r.insert(vec![c("a")]);
        r.insert(vec![c("a"), c("b")]);
    }

    #[test]
    fn matching_uses_pattern() {
        let mut r = Relation::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "c")] {
            r.insert(vec![c(x), c(y)]);
        }
        let pat = vec![Some(c("a")), None];
        let hits: Vec<_> = r.matching(&pat).collect();
        assert_eq!(hits.len(), 2);
        let pat = vec![Some(c("a")), Some(c("c"))];
        assert_eq!(r.matching(&pat).count(), 1);
        let pat = vec![None, None];
        assert_eq!(r.matching(&pat).count(), 3);
        let pat = vec![Some(c("zzz")), None];
        assert_eq!(r.matching(&pat).count(), 0);
    }

    #[test]
    fn matching_picks_selective_column() {
        let mut r = Relation::new();
        for i in 0..100 {
            r.insert(vec![c("hot"), Const::int(i)]);
        }
        r.insert(vec![c("cold"), Const::int(0)]);
        // Column 1 (selectivity 2) should drive; result must still be right.
        let pat = vec![Some(c("hot")), Some(Const::int(0))];
        assert_eq!(r.matching(&pat).count(), 1);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new();
        r.insert(vec![c("b")]);
        r.insert(vec![c("a")]);
        assert_eq!(r.sorted(), vec![vec![c("a")], vec![c("b")]]);
    }

    #[test]
    fn database_counts() {
        let mut db = Database::new();
        assert!(db.insert("p", vec![c("a")]));
        assert!(!db.insert("p", vec![c("a")]));
        assert!(db.insert("q", vec![c("a")]));
        assert_eq!(db.fact_count(), 2);
        assert!(db.contains("p", &[c("a")]));
        assert!(!db.contains("r", &[c("a")]));
        assert_eq!(db.predicates().collect::<Vec<_>>(), vec!["p", "q"]);
    }
}
