//! Fact storage: relations with hash indexes, and the database of all
//! relations.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::fx::{FxHashMap, FxHasher};
use crate::term::{Const, SymId};

/// A stored fact: one tuple of constants.
///
/// Facts are boxed slices of `Copy` constants: a single allocation per
/// fact, no capacity slack, and equality/hash by value.
pub type Fact = Box<[Const]>;

fn fact_hash(fact: &[Const]) -> u64 {
    let mut h = FxHasher::default();
    fact.hash(&mut h);
    h.finish()
}

/// Whether `fact` satisfies a binding pattern (`Some(c)` = column must
/// equal `c`).
pub(crate) fn fact_matches(fact: &[Const], pattern: &[Option<Const>]) -> bool {
    fact.len() == pattern.len()
        && fact
            .iter()
            .zip(pattern)
            .all(|(c, p)| p.as_ref().is_none_or(|pc| pc == c))
}

/// A set of facts of a single predicate, with lazily built per-column
/// hash indexes to accelerate joins.
///
/// Bottom-up rule evaluation probes relations with a *binding pattern*
/// (some columns bound to constants). [`Relation::matching`] serves such
/// probes from the index of the first bound column and post-filters the
/// rest, which makes the common join shapes (key-bound probes produced by
/// the MultiLog reduction axioms) sub-linear.
///
/// Duplicate detection stores row ids keyed by tuple hash rather than a
/// second copy of every tuple, so each fact is stored exactly once.
#[derive(Clone, Default)]
pub struct Relation {
    arity: Option<usize>,
    facts: Vec<Fact>,
    /// `dedup[hash]` = ids of rows whose tuple hashes to `hash`; membership
    /// is confirmed against `facts`, so tuples are not stored twice.
    dedup: FxHashMap<u64, Vec<u32>>,
    /// `indexes[col][constant]` = row ids having `constant` at `col`.
    indexes: Vec<FxHashMap<Const, Vec<u32>>>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The arity, once at least one fact has been inserted.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the relation holds no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Insert a fact; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the fact's arity differs from previously inserted facts —
    /// arity consistency is validated upstream by [`crate::Program`].
    pub fn insert(&mut self, fact: impl Into<Fact>) -> bool {
        let fact = fact.into();
        self.prepare(fact.len());
        let hash = fact_hash(&fact);
        let bucket = self.dedup.entry(hash).or_default();
        if bucket.iter().any(|&r| *self.facts[r as usize] == *fact) {
            return false;
        }
        Self::store(&mut self.facts, &mut self.indexes, bucket, fact);
        true
    }

    /// Insert a fact given by reference, copying it only when it is new;
    /// returns `true` if it was new. On the derivation merge path
    /// duplicates are the common case near the fixpoint, and they cost no
    /// allocation here.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, as [`Relation::insert`] does.
    pub fn insert_if_new(&mut self, fact: &[Const]) -> bool {
        self.prepare(fact.len());
        let hash = fact_hash(fact);
        let bucket = self.dedup.entry(hash).or_default();
        if bucket.iter().any(|&r| *self.facts[r as usize] == *fact) {
            return false;
        }
        Self::store(&mut self.facts, &mut self.indexes, bucket, Fact::from(fact));
        true
    }

    fn prepare(&mut self, arity: usize) {
        match self.arity {
            None => {
                self.arity = Some(arity);
                self.indexes = (0..arity).map(|_| FxHashMap::default()).collect();
            }
            Some(a) => assert_eq!(a, arity, "arity mismatch on insert"),
        }
    }

    fn store(
        facts: &mut Vec<Fact>,
        indexes: &mut [FxHashMap<Const, Vec<u32>>],
        bucket: &mut Vec<u32>,
        fact: Fact,
    ) {
        let row = u32::try_from(facts.len()).expect("relation row overflow");
        bucket.push(row);
        for (col, c) in fact.iter().enumerate() {
            indexes[col].entry(*c).or_default().push(row);
        }
        facts.push(fact);
    }

    /// Retract a fact; returns `true` if it was present.
    ///
    /// Storage stays compact: the last row is swapped into the vacated
    /// slot and every structure that names rows by id — the dedup bucket
    /// of the moved tuple and its per-column index entries — is patched
    /// to the new id. When the last fact is retracted the relation
    /// returns to its pristine state (arity forgotten, indexes dropped),
    /// so a later insert may legally use a different arity.
    pub fn retract(&mut self, fact: &[Const]) -> bool {
        if self.arity != Some(fact.len()) {
            return false;
        }
        let hash = fact_hash(fact);
        let Some(bucket) = self.dedup.get_mut(&hash) else {
            return false;
        };
        let Some(pos) = bucket
            .iter()
            .position(|&r| *self.facts[r as usize] == *fact)
        else {
            return false;
        };
        let row = bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.dedup.remove(&hash);
        }
        for (col, c) in fact.iter().enumerate() {
            let entry = self
                .indexes
                .get_mut(col)
                .and_then(|idx| idx.get_mut(c))
                .expect("stored fact is indexed");
            let at = entry
                .iter()
                .position(|&r| r == row)
                .expect("stored fact is indexed");
            entry.swap_remove(at);
            if entry.is_empty() {
                self.indexes[col].remove(c);
            }
        }
        let last = u32::try_from(self.facts.len() - 1).expect("relation row overflow");
        self.facts.swap_remove(row as usize);
        if row != last {
            // The old last row now lives at `row`: rewrite its id.
            let moved = self.facts[row as usize].clone();
            let bucket = self
                .dedup
                .get_mut(&fact_hash(&moved))
                .expect("moved fact is deduped");
            let at = bucket
                .iter()
                .position(|&r| r == last)
                .expect("moved fact is deduped");
            bucket[at] = row;
            for (col, c) in moved.iter().enumerate() {
                let entry = self.indexes[col].get_mut(c).expect("moved fact is indexed");
                let at = entry
                    .iter()
                    .position(|&r| r == last)
                    .expect("moved fact is indexed");
                entry[at] = row;
            }
        }
        if self.facts.is_empty() {
            self.arity = None;
            self.indexes.clear();
            self.dedup.clear();
        }
        true
    }

    /// Whether the relation contains exactly this fact.
    pub fn contains(&self, fact: &[Const]) -> bool {
        self.dedup
            .get(&fact_hash(fact))
            .is_some_and(|rows| rows.iter().any(|&r| *self.facts[r as usize] == *fact))
    }

    /// Iterate over all facts.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Facts matching a binding pattern: `pattern[i] = Some(c)` requires
    /// column `i` to equal `c`. Rows are yielded in storage order, which
    /// is insertion order until the first retraction perturbs it; every
    /// externally visible ordering goes through [`Relation::sorted`].
    pub fn matching<'a>(
        &'a self,
        pattern: &'a [Option<Const>],
    ) -> Box<dyn Iterator<Item = &'a Fact> + 'a> {
        // Pick the most selective bound column to drive the scan.
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|c| (i, c)))
            .filter_map(|(i, c)| {
                self.indexes
                    .get(i)
                    .map(|idx| (i, c, idx.get(c).map_or(0, Vec::len)))
            })
            .min_by_key(|&(_, _, n)| n);
        match best {
            Some((col, c, _)) => {
                let rows = self.indexes[col].get(c).map(Vec::as_slice).unwrap_or(&[]);
                Box::new(
                    rows.iter()
                        .map(move |&r| &self.facts[r as usize])
                        .filter(move |f| fact_matches(f, pattern)),
                )
            }
            None => Box::new(self.facts.iter().filter(move |f| fact_matches(f, pattern))),
        }
    }

    /// Facts sorted lexicographically — deterministic output order for
    /// printing and testing.
    pub fn sorted(&self) -> Vec<Fact> {
        let mut out = self.facts.clone();
        out.sort();
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} facts)", self.facts.len())
    }
}

/// A database: all relations, keyed by interned predicate id.
///
/// Lookups by `&str` intern the name once; hot paths inside the engine
/// use the `*_id` variants to skip the symbol-table round trip entirely.
/// Iteration (`relations`, `predicates`) stays in name order so printed
/// output is deterministic and identical to the previous
/// `BTreeMap<Arc<str>, _>` representation.
///
/// Relation segments are [`Arc`]-shared: `Database::clone` is O(number
/// of relations) and shares every fact, index, and dedup table with the
/// original. Mutation goes through [`Arc::make_mut`], copying only the
/// relations a writer actually touches (copy-on-write). This is what
/// makes MVCC generations cheap — a committed generation can stay
/// pinned by reader [`Snapshot`](crate::Snapshot)s while the next one
/// is built from a clone.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<SymId, Arc<Relation>>,
    fact_count: usize,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The relation for `predicate`, if any fact or declaration exists.
    pub fn relation(&self, predicate: &str) -> Option<&Relation> {
        self.relations.get(&SymId::intern(predicate)).map(|r| &**r)
    }

    /// The relation for an interned predicate id, if present.
    pub fn relation_id(&self, predicate: SymId) -> Option<&Relation> {
        self.relations.get(&predicate).map(|r| &**r)
    }

    /// The relation for `predicate`, creating it if missing.
    pub fn relation_mut(&mut self, predicate: &str) -> &mut Relation {
        self.relation_mut_id(SymId::intern(predicate))
    }

    /// The relation for an interned predicate id, creating it if missing.
    ///
    /// If the relation segment is shared with another generation (the
    /// database was cloned), it is detached (deep-copied) here, so the
    /// pinned generation never observes the mutation.
    pub fn relation_mut_id(&mut self, predicate: SymId) -> &mut Relation {
        Arc::make_mut(self.relations.entry(predicate).or_default())
    }

    /// Insert a fact; returns `true` if new.
    pub fn insert(&mut self, predicate: &str, fact: impl Into<Fact>) -> bool {
        self.insert_id(SymId::intern(predicate), fact)
    }

    /// Insert a fact under an interned predicate id; returns `true` if new.
    pub fn insert_id(&mut self, predicate: SymId, fact: impl Into<Fact>) -> bool {
        let new = self.relation_mut_id(predicate).insert(fact);
        if new {
            self.fact_count += 1;
        }
        new
    }

    /// Insert a fact by reference under an interned predicate id, copying
    /// it only when new; returns `true` if new.
    pub fn insert_if_new_id(&mut self, predicate: SymId, fact: &[Const]) -> bool {
        let new = self.relation_mut_id(predicate).insert_if_new(fact);
        if new {
            self.fact_count += 1;
        }
        new
    }

    /// Retract a fact; returns `true` if it was present.
    pub fn retract(&mut self, predicate: &str, fact: &[Const]) -> bool {
        self.retract_id(SymId::intern(predicate), fact)
    }

    /// Retract a fact under an interned predicate id; returns `true` if it
    /// was present. The relation entry itself stays registered (empty), so
    /// plans that resolved the predicate keep working.
    pub fn retract_id(&mut self, predicate: SymId, fact: &[Const]) -> bool {
        // Only detach the shared segment if the fact is actually present;
        // a no-op retract must not deep-copy the relation.
        let gone = match self.relations.get_mut(&predicate) {
            Some(rel) if rel.contains(fact) => Arc::make_mut(rel).retract(fact),
            _ => false,
        };
        if gone {
            self.fact_count -= 1;
        }
        gone
    }

    /// Reset the relation for a predicate id to empty — it stays
    /// registered, so compiled plans keep resolving it — and subtract its
    /// facts from the database total. Used by the incremental engine's
    /// per-stratum recompute fallback.
    pub fn clear_relation_id(&mut self, predicate: SymId) {
        if let Some(rel) = self.relations.get_mut(&predicate) {
            self.fact_count -= rel.len();
            // Fresh Arc rather than make_mut: the old segment may stay
            // pinned by a snapshot, and a reset needs no copy anyway.
            *rel = Arc::new(Relation::new());
        }
    }

    /// Whether the database contains this ground fact.
    pub fn contains(&self, predicate: &str, fact: &[Const]) -> bool {
        self.contains_id(SymId::intern(predicate), fact)
    }

    /// Whether the database contains this ground fact (by predicate id).
    pub fn contains_id(&self, predicate: SymId, fact: &[Const]) -> bool {
        self.relations
            .get(&predicate)
            .is_some_and(|r| r.contains(fact))
    }

    /// Total number of facts across relations.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Iterate over `(predicate, relation)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        let mut entries: Vec<(SymId, &Relation)> =
            self.relations.iter().map(|(&k, v)| (k, &**v)).collect();
        entries.sort_by_key(|&(k, _)| k);
        entries.into_iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all predicates with at least one stored relation entry.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.relations().map(|(p, _)| p)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.fact_count)?;
        for (p, r) in self.relations() {
            writeln!(f, "  {p}/{:?}: {} facts", r.arity(), r.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Const {
        Const::sym(s)
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new();
        assert!(r.insert(vec![c("a"), c("b")]));
        assert!(!r.insert(vec![c("a"), c("b")]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[c("a"), c("b")]));
        assert!(!r.contains(&[c("b"), c("a")]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new();
        r.insert(vec![c("a")]);
        r.insert(vec![c("a"), c("b")]);
    }

    #[test]
    fn matching_uses_pattern() {
        let mut r = Relation::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "c")] {
            r.insert(vec![c(x), c(y)]);
        }
        let pat = vec![Some(c("a")), None];
        let hits: Vec<_> = r.matching(&pat).collect();
        assert_eq!(hits.len(), 2);
        let pat = vec![Some(c("a")), Some(c("c"))];
        assert_eq!(r.matching(&pat).count(), 1);
        let pat = vec![None, None];
        assert_eq!(r.matching(&pat).count(), 3);
        let pat = vec![Some(c("zzz")), None];
        assert_eq!(r.matching(&pat).count(), 0);
    }

    #[test]
    fn matching_picks_selective_column() {
        let mut r = Relation::new();
        for i in 0..100 {
            r.insert(vec![c("hot"), Const::int(i)]);
        }
        r.insert(vec![c("cold"), Const::int(0)]);
        // Column 1 (selectivity 2) should drive; result must still be right.
        let pat = vec![Some(c("hot")), Some(Const::int(0))];
        assert_eq!(r.matching(&pat).count(), 1);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new();
        r.insert(vec![c("b")]);
        r.insert(vec![c("a")]);
        let sorted = r.sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!(*sorted[0], [c("a")]);
        assert_eq!(*sorted[1], [c("b")]);
    }

    #[test]
    fn database_counts() {
        let mut db = Database::new();
        assert!(db.insert("p", vec![c("a")]));
        assert!(!db.insert("p", vec![c("a")]));
        assert!(db.insert("q", vec![c("a")]));
        assert_eq!(db.fact_count(), 2);
        assert!(db.contains("p", &[c("a")]));
        assert!(!db.contains("r", &[c("a")]));
        assert_eq!(db.predicates().collect::<Vec<_>>(), vec!["p", "q"]);
    }

    #[test]
    fn retract_removes_and_reports() {
        let mut r = Relation::new();
        r.insert(vec![c("a"), c("b")]);
        r.insert(vec![c("b"), c("c")]);
        assert!(r.retract(&[c("a"), c("b")]));
        assert!(!r.retract(&[c("a"), c("b")]), "second retract is a no-op");
        assert!(!r.retract(&[c("z"), c("z")]), "absent fact");
        assert!(!r.retract(&[c("b")]), "wrong arity is not a panic");
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[c("b"), c("c")]));
        assert!(!r.contains(&[c("a"), c("b")]));
    }

    #[test]
    fn retract_patches_moved_row_ids() {
        // Retract the first row so the last row is swapped into slot 0;
        // index probes and dedup must still find it under its new id.
        let mut r = Relation::new();
        for (x, y) in [("a", "b"), ("c", "d"), ("e", "f")] {
            r.insert(vec![c(x), c(y)]);
        }
        assert!(r.retract(&[c("a"), c("b")]));
        let pat = vec![Some(c("e")), None];
        let hits: Vec<_> = r.matching(&pat).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(**hits[0], [c("e"), c("f")]);
        assert!(r.contains(&[c("e"), c("f")]));
        assert!(!r.insert(vec![c("e"), c("f")]), "dedup still sees it");
        assert!(!r.insert(vec![c("c"), c("d")]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn retract_to_empty_resets_arity() {
        let mut r = Relation::new();
        r.insert(vec![c("a"), c("b")]);
        assert!(r.retract(&[c("a"), c("b")]));
        assert!(r.is_empty());
        assert_eq!(r.arity(), None);
        // A fresh arity is legal again, exactly as on a new relation.
        assert!(r.insert(vec![c("x")]));
        assert_eq!(r.arity(), Some(1));
        assert!(r.contains(&[c("x")]));
    }

    #[test]
    fn retract_interleaved_with_insert_stays_consistent() {
        let mut r = Relation::new();
        for i in 0..20 {
            r.insert(vec![Const::int(i), Const::int(i + 1)]);
        }
        for i in (0..20).step_by(2) {
            assert!(r.retract(&[Const::int(i), Const::int(i + 1)]));
        }
        for i in 0..20 {
            let present = i % 2 == 1;
            assert_eq!(r.contains(&[Const::int(i), Const::int(i + 1)]), present);
            let pat = vec![Some(Const::int(i)), None];
            assert_eq!(r.matching(&pat).count(), usize::from(present));
        }
        // Reinsert everything; dedup must admit the retracted half only.
        let mut added = 0;
        for i in 0..20 {
            if r.insert(vec![Const::int(i), Const::int(i + 1)]) {
                added += 1;
            }
        }
        assert_eq!(added, 10);
        assert_eq!(r.len(), 20);
    }

    #[test]
    fn database_retract_tracks_fact_count() {
        let mut db = Database::new();
        db.insert("p", vec![c("a")]);
        db.insert("p", vec![c("b")]);
        db.insert("q", vec![c("a")]);
        assert!(db.retract("p", &[c("a")]));
        assert!(!db.retract("p", &[c("a")]));
        assert!(!db.retract("r", &[c("a")]), "unknown predicate");
        assert_eq!(db.fact_count(), 2);
        assert!(db.retract("q", &[c("a")]));
        assert_eq!(db.fact_count(), 1);
        // The emptied relation stays registered.
        assert!(db.relation("q").is_some());
        assert!(db.relation("q").unwrap().is_empty());
    }

    #[test]
    fn id_paths_agree_with_str_paths() {
        let mut db = Database::new();
        let p = SymId::intern("p");
        assert!(db.insert_id(p, vec![c("a")]));
        assert!(db.contains("p", &[c("a")]));
        assert!(db.contains_id(p, &[c("a")]));
        assert_eq!(db.relation_id(p).unwrap().len(), 1);
        assert!(std::ptr::eq(
            db.relation("p").unwrap(),
            db.relation_id(p).unwrap()
        ));
    }
}
