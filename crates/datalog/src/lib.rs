//! A from-scratch Datalog engine with stratified negation and semi-naive
//! bottom-up evaluation.
//!
//! This crate is the substitute for the CORAL deductive database that the
//! paper *"Belief Reasoning in MLS Deductive Databases"* (Jamil, SIGMOD
//! 1999) uses as the back-end of its reduction semantics (§6). The
//! MultiLog-to-Datalog translation τ together with the fixed axiom set
//! **A** of Figure 12 only requires the Horn fragment with stratified
//! negation and built-in comparisons — exactly what this engine provides:
//!
//! * Terms: cheaply clonable symbolic constants, 64-bit integers, and
//!   variables.
//! * Clauses with positive literals, *negated* literals, and comparison
//!   built-ins (`=`, `!=`, `<`, `<=`, `>`, `>=`).
//! * Range-restriction (safety) checking.
//! * Predicate dependency analysis and stratification (negation must not
//!   occur inside a recursive component).
//! * Both **naive** and **semi-naive** bottom-up evaluation — the naive
//!   evaluator exists so the semi-naive one can be validated against it
//!   and ablated in the benchmark suite.
//! * A recursive-descent parser for a conventional textual syntax.
//! * Evaluation guards — wall-clock deadlines, fact budgets checked
//!   inside the join loop, cooperative cancellation — surfacing as typed
//!   errors, plus per-rule/per-stratum statistics and a [`TraceSink`]
//!   for structured evaluation events.
//! * A static-analysis pass ([`mod@analyze`]) that finds authoring mistakes —
//!   negative cycles with a full witness, unreachable rules, singleton
//!   variables — before evaluation, with spanned diagnostics.
//!
//! # Example
//!
//! ```
//! use multilog_datalog::{parse_program, Engine};
//!
//! let program = parse_program(
//!     r#"
//!     edge(a, b). edge(b, c). edge(c, d).
//!     path(X, Y) :- edge(X, Y).
//!     path(X, Y) :- edge(X, Z), path(Z, Y).
//!     "#,
//! )
//! .unwrap();
//! let db = Engine::new(&program).unwrap().run().unwrap();
//! assert_eq!(db.relation("path").unwrap().len(), 6);
//! ```
//!
//! Arithmetic built-ins and query-restricted evaluation:
//!
//! ```
//! use multilog_datalog::{parse_program, Const, Engine};
//!
//! let program = parse_program(
//!     r#"
//!     fib(0, 0). fib(1, 1).
//!     fib(N, F) :- fib(N1, F1), fib(N2, F2), N2 = N1 + 1, N2 < 12,
//!                  N = N2 + 1, F = F1 + F2.
//!     unrelated(X, Y) :- fib(X, _1), fib(Y, _2).
//!     "#,
//! )
//! .unwrap();
//! // Only `fib`'s dependency cone is materialized; out-of-cone
//! // predicates do not even get an (empty) relation.
//! let db = Engine::new(&program).unwrap().run_for_query(["fib"]).unwrap();
//! assert!(db.contains("fib", &[Const::int(12), Const::int(144)]));
//! assert!(db.relation("unrelated").is_none());
//! ```
//!
//! Point queries with a bound argument go further: the magic-sets
//! rewrite ([`mod@magic`], via [`Engine::run_for_goal`]) evaluates only
//! the sub-fixpoint the goal's constants demand:
//!
//! ```
//! use multilog_datalog::{parse_program, parse_query, Engine};
//!
//! let program = parse_program(
//!     r#"
//!     edge(a, b). edge(b, c). edge(x, y).
//!     path(X, Y) :- edge(X, Y).
//!     path(X, Z) :- path(X, Y), edge(Y, Z).
//!     "#,
//! )
//! .unwrap();
//! let goal = parse_query("path(a, X)").unwrap();
//! let (answers, stats) = Engine::new(&program).unwrap().run_for_goal(&goal).unwrap();
//! assert_eq!(answers.len(), 2); // a→b, a→c; the x→y component is never demanded
//! assert_eq!(stats.demand.unwrap().strategy, "magic");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod analyze;
mod atom;
mod clause;
mod error;
mod eval;
mod fx;
mod guard;
mod incremental;
pub mod magic;
mod parser;
mod plan;
mod program;
mod query;
mod snapshot;
mod storage;
mod term;
mod trace;

pub use algo::{AlgoContext, AlgoImpl, AlgoRegistry};
pub use analyze::{analyze, analyze_for_goal, analyze_for_query, check_clauses, Lint, Severity};
pub use atom::{ArithOp, Atom, CmpOp, Literal};
pub use clause::{AggFunc, Aggregate, Clause, Span};
pub use error::DatalogError;
pub use eval::{DemandStats, Engine, EvalStats, Executor, RuleStats, Strategy, StratumStats};
pub use guard::CancelToken;
pub use incremental::{CommitStats, IncrementalEngine};
pub use magic::MagicProgram;
pub use parser::{parse_atom, parse_clause, parse_program, parse_query};
pub use program::{DepGraph, Program, Stratification};
pub use query::{run_query, run_query_guarded, Bindings, QueryAnswer, QueryGuards};
pub use snapshot::{GenerationStore, Snapshot};
pub use storage::{Database, Relation};
pub use term::{Const, SymId, Term};
pub use trace::{NoopTrace, RecordingTrace, TraceEvent, TraceSink};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatalogError>;
