//! Rule compilation: slot-allocated join plans with greedy literal
//! ordering.
//!
//! Each rule (and each semi-naive delta variant of it) is compiled once
//! per stratum into a [`RulePlan`]: variables become dense *slots* into a
//! reusable bindings buffer, and body literals become a sequence of
//! [`Step`]s in an execution order chosen greedily — positive literals
//! ranked by bound-argument count then estimated relation cardinality,
//! negated and built-in literals scheduled as soon as their variables are
//! bound. This replaces the previous fixed left-to-right interpretation
//! of the body.
//!
//! # Negation under reordering
//!
//! A negated literal may contain variables that occur in no positive
//! literal *textually before* it; these are existentially quantified
//! inside the negation (`¬∃Y r(X, Y)`). That existential set is fixed
//! **statically from the textual order** before any reordering, so a
//! variable stays existential even when the chosen execution order has
//! already bound it — reordering never changes which facts a rule
//! derives.

use std::collections::{HashMap, HashSet};
use std::mem;

use crate::atom::{ArithOp, CmpOp, Literal};
use crate::clause::Clause;
use crate::guard::{EvalGuard, GuardCursor};
use crate::storage::{Database, Fact, Relation};
use crate::term::{Const, SymId, Term};
use crate::{DatalogError, Result};

/// One column of a positive scan.
#[derive(Clone, Copy, Debug)]
enum ScanCol {
    /// Must equal this constant (part of the index probe).
    Const(Const),
    /// Must equal the slot value bound by an earlier step (probe).
    Bound(u32),
    /// First occurrence of an unbound variable: binds the slot.
    Bind(u32),
    /// Repeated occurrence within this atom: must equal the slot value
    /// bound earlier in the same row.
    Check(u32),
}

/// One column of a negated-literal probe.
#[derive(Clone, Copy, Debug)]
enum NegCol {
    /// Must equal this constant.
    Const(Const),
    /// Must equal the slot value (non-existential variable).
    Bound(u32),
    /// Existential variable, first occurrence: captures into a local.
    Local(u32),
    /// Existential variable, repeated: must equal the captured local.
    LocalCheck(u32),
}

/// A value source for comparisons, arithmetic, and head projection.
#[derive(Clone, Copy, Debug)]
enum ValSrc {
    Const(Const),
    Slot(u32),
}

/// What an arithmetic built-in does with its result.
#[derive(Clone, Copy, Debug)]
enum ArithTarget {
    /// Bind the result into an unbound slot.
    Bind(u32),
    /// The target slot is already bound: check equality.
    CheckSlot(u32),
    /// The target is a constant: check equality.
    CheckConst(Const),
}

/// One scheduled operation of a compiled rule body.
#[derive(Clone, Debug)]
enum Step {
    /// Join against a relation (or the delta relation for the variant's
    /// distinguished body position).
    Scan {
        pred: SymId,
        from_delta: bool,
        cols: Vec<ScanCol>,
    },
    /// Prune unless `¬∃(locals) pred(cols)` holds.
    Neg {
        pred: SymId,
        cols: Vec<NegCol>,
        n_locals: usize,
    },
    /// Prune unless the comparison holds.
    Cmp { op: CmpOp, lhs: ValSrc, rhs: ValSrc },
    /// Evaluate `lhs op rhs` and bind or check the target.
    Arith {
        op: ArithOp,
        lhs: ValSrc,
        rhs: ValSrc,
        target: ArithTarget,
    },
}

/// Reusable per-plan evaluation buffers: the slot bindings plus one
/// pattern/local buffer per step, taken out and restored around the
/// recursive join so no per-row allocation happens.
pub(crate) struct Scratch {
    bindings: Vec<Const>,
    patterns: Vec<Vec<Option<Const>>>,
    locals: Vec<Vec<Const>>,
    /// Guard tick state and probe counter for this plan's evaluations.
    cursor: GuardCursor,
}

impl Scratch {
    /// Take (and reset) the join-probe count accumulated since the last
    /// call, for per-rule statistics.
    pub(crate) fn take_probes(&mut self) -> u64 {
        self.cursor.take_probes()
    }
}

/// A compiled rule variant: slots, ordered steps, head projection.
#[derive(Debug)]
pub(crate) struct RulePlan {
    /// The head predicate (interned).
    pub head_pred: SymId,
    head: Vec<ValSrc>,
    steps: Vec<Step>,
    n_slots: usize,
    /// The textual body position reading from the delta relation, if this
    /// is a semi-naive variant.
    pub delta_pred: Option<SymId>,
    /// Human-readable description of the chosen join order.
    pub order_desc: String,
}

impl RulePlan {
    /// Compile `rule` into a plan. `delta_pos` selects the body position
    /// that reads from a delta relation (semi-naive variant); `db`
    /// supplies relation cardinality estimates for the greedy ordering.
    pub fn compile(rule: &Clause, delta_pos: Option<usize>, db: &Database) -> Result<Self> {
        let unsafe_var = |v: &str| DatalogError::UnsafeVariable {
            variable: v.to_owned(),
            clause: rule.to_string(),
        };

        // Slot allocation: every variable bound by a positive literal or
        // an arithmetic target gets a dense slot.
        let mut slots: HashMap<&str, u32> = HashMap::new();
        fn slot_of<'a>(v: &'a str, slots: &mut HashMap<&'a str, u32>) -> u32 {
            let next = u32::try_from(slots.len()).expect("slot overflow");
            *slots.entry(v).or_insert(next)
        }
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) => {
                    for v in a.variables() {
                        slot_of(v, &mut slots);
                    }
                }
                Literal::Arith { target, .. } => {
                    if let Some(v) = target.as_var() {
                        slot_of(v, &mut slots);
                    }
                }
                Literal::Neg(_) | Literal::Cmp { .. } => {}
            }
        }

        // Existential sets of negated literals, fixed by TEXTUAL order:
        // vars not bound by any earlier positive literal or arithmetic
        // target are quantified inside the negation.
        let mut textually_bound: HashSet<&str> = HashSet::new();
        let mut existential: Vec<Option<HashSet<&str>>> = Vec::with_capacity(rule.body.len());
        for lit in &rule.body {
            match lit {
                Literal::Neg(a) => {
                    let e: HashSet<&str> = a
                        .variables()
                        .filter(|v| !textually_bound.contains(v))
                        .collect();
                    existential.push(Some(e));
                }
                Literal::Pos(a) => {
                    textually_bound.extend(a.variables());
                    existential.push(None);
                }
                Literal::Arith { target, .. } => {
                    textually_bound.extend(target.as_var());
                    existential.push(None);
                }
                Literal::Cmp { .. } => existential.push(None),
            }
        }

        // Greedy scheduling.
        let mut bound: HashSet<u32> = HashSet::new();
        let mut scheduled = vec![false; rule.body.len()];
        let mut steps: Vec<Step> = Vec::with_capacity(rule.body.len());
        let mut order: Vec<usize> = Vec::with_capacity(rule.body.len());

        let val_src = |t: &Term, slots: &HashMap<&str, u32>| -> Result<ValSrc> {
            match t {
                Term::Const(c) => Ok(ValSrc::Const(*c)),
                Term::Var(v) => slots
                    .get(v.as_ref())
                    .map(|&s| ValSrc::Slot(s))
                    .ok_or_else(|| unsafe_var(v)),
            }
        };

        while scheduled.iter().any(|&s| !s) {
            // Flush every ready non-positive literal, in textual order.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for i in 0..rule.body.len() {
                    if scheduled[i] {
                        continue;
                    }
                    match &rule.body[i] {
                        Literal::Neg(a) => {
                            let e = existential[i].as_ref().expect("neg has existential set");
                            let ready = a.variables().all(|v| {
                                e.contains(v) || slots.get(v).is_some_and(|s| bound.contains(s))
                            });
                            if !ready {
                                continue;
                            }
                            let mut local_of: HashMap<&str, u32> = HashMap::new();
                            let mut cols = Vec::with_capacity(a.terms.len());
                            for t in &a.terms {
                                cols.push(match t {
                                    Term::Const(c) => NegCol::Const(*c),
                                    Term::Var(v) if e.contains(v.as_ref()) => {
                                        let next =
                                            u32::try_from(local_of.len()).expect("local overflow");
                                        match local_of.entry(v.as_ref()) {
                                            std::collections::hash_map::Entry::Occupied(o) => {
                                                NegCol::LocalCheck(*o.get())
                                            }
                                            std::collections::hash_map::Entry::Vacant(va) => {
                                                va.insert(next);
                                                NegCol::Local(next)
                                            }
                                        }
                                    }
                                    Term::Var(v) => NegCol::Bound(slots[v.as_ref()]),
                                });
                            }
                            steps.push(Step::Neg {
                                pred: a.predicate,
                                cols,
                                n_locals: local_of.len(),
                            });
                            scheduled[i] = true;
                            order.push(i);
                            progressed = true;
                        }
                        Literal::Cmp { op, lhs, rhs } => {
                            let ready = [lhs, rhs].into_iter().all(|t| {
                                t.as_var()
                                    .is_none_or(|v| slots.get(v).is_some_and(|s| bound.contains(s)))
                            });
                            if !ready {
                                continue;
                            }
                            steps.push(Step::Cmp {
                                op: *op,
                                lhs: val_src(lhs, &slots)?,
                                rhs: val_src(rhs, &slots)?,
                            });
                            scheduled[i] = true;
                            order.push(i);
                            progressed = true;
                        }
                        Literal::Arith {
                            target,
                            lhs,
                            op,
                            rhs,
                        } => {
                            let ready = [lhs, rhs].into_iter().all(|t| {
                                t.as_var()
                                    .is_none_or(|v| slots.get(v).is_some_and(|s| bound.contains(s)))
                            });
                            if !ready {
                                continue;
                            }
                            let tgt = match target {
                                Term::Const(c) => ArithTarget::CheckConst(*c),
                                Term::Var(v) => {
                                    let s = slots[v.as_ref()];
                                    if bound.contains(&s) {
                                        ArithTarget::CheckSlot(s)
                                    } else {
                                        bound.insert(s);
                                        ArithTarget::Bind(s)
                                    }
                                }
                            };
                            steps.push(Step::Arith {
                                op: *op,
                                lhs: val_src(lhs, &slots)?,
                                rhs: val_src(rhs, &slots)?,
                                target: tgt,
                            });
                            scheduled[i] = true;
                            order.push(i);
                            progressed = true;
                        }
                        Literal::Pos(_) => {}
                    }
                }
            }

            // Pick the best remaining positive literal: most bound
            // argument positions, then smallest estimated cardinality,
            // then textual position (for determinism).
            let best = (0..rule.body.len())
                .filter(|&i| !scheduled[i])
                .filter_map(|i| match &rule.body[i] {
                    Literal::Pos(a) => Some((i, a)),
                    _ => None,
                })
                .min_by_key(|&(i, a)| {
                    let bound_args = a
                        .terms
                        .iter()
                        .filter(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => {
                                slots.get(v.as_ref()).is_some_and(|s| bound.contains(s))
                            }
                        })
                        .count();
                    let est = if delta_pos == Some(i) {
                        // Deltas are typically tiny: rank them below every
                        // full relation so they are scheduled early.
                        0
                    } else {
                        db.relation_id(a.predicate).map_or(0, Relation::len) + 1
                    };
                    (usize::MAX - bound_args, est, i)
                });
            let Some((i, a)) = best else { break };
            let mut bound_here: HashSet<u32> = HashSet::new();
            let mut cols = Vec::with_capacity(a.terms.len());
            for t in &a.terms {
                cols.push(match t {
                    Term::Const(c) => ScanCol::Const(*c),
                    Term::Var(v) => {
                        let s = slots[v.as_ref()];
                        if bound.contains(&s) {
                            ScanCol::Bound(s)
                        } else if bound_here.contains(&s) {
                            ScanCol::Check(s)
                        } else {
                            bound_here.insert(s);
                            ScanCol::Bind(s)
                        }
                    }
                });
            }
            bound.extend(bound_here);
            steps.push(Step::Scan {
                pred: a.predicate,
                from_delta: delta_pos == Some(i),
                cols,
            });
            scheduled[i] = true;
            order.push(i);
        }

        // Anything left never became ready: a built-in over variables no
        // positive literal binds. (The textual evaluator paniced here.)
        if let Some(i) = scheduled.iter().position(|&s| !s) {
            let v = rule.body[i]
                .variables()
                .into_iter()
                .find(|v| slots.get(v).is_none_or(|s| !bound.contains(s)))
                .unwrap_or("_");
            return Err(unsafe_var(v));
        }

        // Head projection (safety guarantees every head var is bound).
        let head = rule
            .head
            .terms
            .iter()
            .map(|t| val_src(t, &slots))
            .collect::<Result<Vec<_>>>()?;

        let order_desc = format!(
            "{}{} :- [{}]",
            rule.head.predicate,
            match delta_pos {
                Some(p) => format!(" (Δ@{p})"),
                None => String::new(),
            },
            order
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );

        Ok(RulePlan {
            head_pred: rule.head.predicate,
            head,
            steps,
            n_slots: slots.len(),
            delta_pred: delta_pos.map(|p| {
                rule.body[p]
                    .atom()
                    .expect("delta position is a positive literal")
                    .predicate
            }),
            order_desc,
        })
    }

    /// Allocate evaluation buffers sized for this plan.
    pub fn new_scratch(&self) -> Scratch {
        Scratch {
            bindings: vec![Const::Int(0); self.n_slots],
            patterns: self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Scan { cols, .. } => Vec::with_capacity(cols.len()),
                    Step::Neg { cols, .. } => Vec::with_capacity(cols.len()),
                    _ => Vec::new(),
                })
                .collect(),
            locals: self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Neg { n_locals, .. } => vec![Const::Int(0); *n_locals],
                    _ => Vec::new(),
                })
                .collect(),
            cursor: GuardCursor::new(),
        }
    }

    /// Evaluate the plan, appending every head instantiation (possibly
    /// with duplicates) to `out`. `delta` supplies the delta facts when
    /// this is a semi-naive variant; deltas are plain fact lists (no
    /// indexes) because the planner schedules the delta scan first, where
    /// it is enumerated rather than probed. The `guard` is consulted at
    /// tick granularity inside the join loop and once more on completion,
    /// so deadline, budget, and cancellation trips surface from within a
    /// single (possibly enormous) rule application.
    pub fn eval(
        &self,
        db: &Database,
        delta: Option<&[Fact]>,
        scratch: &mut Scratch,
        out: &mut Vec<Fact>,
        guard: &EvalGuard,
    ) -> Result<()> {
        debug_assert_eq!(scratch.bindings.len(), self.n_slots);
        self.exec(0, db, delta, scratch, out, guard)?;
        scratch.cursor.flush(guard)
    }

    fn exec(
        &self,
        step: usize,
        db: &Database,
        delta: Option<&[Fact]>,
        scratch: &mut Scratch,
        out: &mut Vec<Fact>,
        guard: &EvalGuard,
    ) -> Result<()> {
        let Some(s) = self.steps.get(step) else {
            scratch.cursor.emit(guard)?;
            out.push(
                self.head
                    .iter()
                    .map(|h| match h {
                        ValSrc::Const(c) => *c,
                        ValSrc::Slot(s) => scratch.bindings[*s as usize],
                    })
                    .collect(),
            );
            return Ok(());
        };
        match s {
            Step::Scan {
                pred,
                from_delta,
                cols,
            } => {
                if *from_delta {
                    // Delta facts are filtered inline — no pattern probe,
                    // no index: the whole delta is consumed anyway.
                    let facts = delta.expect("delta variant evaluated without a delta");
                    let mut result = Ok(());
                    'facts: for fact in facts {
                        result = scratch.cursor.probe(guard);
                        if result.is_err() {
                            break;
                        }
                        for (i, col) in cols.iter().enumerate() {
                            match col {
                                ScanCol::Const(c) => {
                                    if *c != fact[i] {
                                        continue 'facts;
                                    }
                                }
                                ScanCol::Bound(s) | ScanCol::Check(s) => {
                                    if scratch.bindings[*s as usize] != fact[i] {
                                        continue 'facts;
                                    }
                                }
                                ScanCol::Bind(s) => scratch.bindings[*s as usize] = fact[i],
                            }
                        }
                        result = self.exec(step + 1, db, delta, scratch, out, guard);
                        if result.is_err() {
                            break;
                        }
                    }
                    return result;
                }
                let rel = match db.relation_id(*pred) {
                    Some(r) => r,
                    None => return Ok(()), // empty relation: no matches
                };
                let mut pattern = mem::take(&mut scratch.patterns[step]);
                pattern.clear();
                for col in cols {
                    pattern.push(match col {
                        ScanCol::Const(c) => Some(*c),
                        ScanCol::Bound(s) => Some(scratch.bindings[*s as usize]),
                        ScanCol::Bind(_) | ScanCol::Check(_) => None,
                    });
                }
                let mut result = Ok(());
                for fact in rel.matching(&pattern) {
                    result = scratch.cursor.probe(guard);
                    if result.is_err() {
                        break;
                    }
                    let mut ok = true;
                    for (i, col) in cols.iter().enumerate() {
                        match col {
                            ScanCol::Bind(s) => scratch.bindings[*s as usize] = fact[i],
                            ScanCol::Check(s) => {
                                if scratch.bindings[*s as usize] != fact[i] {
                                    ok = false;
                                    break;
                                }
                            }
                            ScanCol::Const(_) | ScanCol::Bound(_) => {}
                        }
                    }
                    if ok {
                        result = self.exec(step + 1, db, delta, scratch, out, guard);
                        if result.is_err() {
                            break;
                        }
                    }
                }
                scratch.patterns[step] = pattern;
                result
            }
            Step::Neg {
                pred,
                cols,
                n_locals,
            } => {
                if let Some(rel) = db.relation_id(*pred) {
                    let mut pattern = mem::take(&mut scratch.patterns[step]);
                    pattern.clear();
                    for col in cols {
                        pattern.push(match col {
                            NegCol::Const(c) => Some(*c),
                            NegCol::Bound(s) => Some(scratch.bindings[*s as usize]),
                            NegCol::Local(_) | NegCol::LocalCheck(_) => None,
                        });
                    }
                    let mut locals = mem::take(&mut scratch.locals[step]);
                    locals.clear();
                    locals.resize(*n_locals, Const::Int(0));
                    let mut rows: u32 = 0;
                    let exists = rel.matching(&pattern).any(|fact| {
                        rows = rows.saturating_add(1);
                        for (i, col) in cols.iter().enumerate() {
                            match col {
                                NegCol::Local(l) => locals[*l as usize] = fact[i],
                                NegCol::LocalCheck(l) => {
                                    if locals[*l as usize] != fact[i] {
                                        return false;
                                    }
                                }
                                NegCol::Const(_) | NegCol::Bound(_) => {}
                            }
                        }
                        true
                    });
                    scratch.patterns[step] = pattern;
                    scratch.locals[step] = locals;
                    scratch.cursor.probe_n(rows, guard)?;
                    if exists {
                        return Ok(());
                    }
                }
                self.exec(step + 1, db, delta, scratch, out, guard)
            }
            Step::Cmp { op, lhs, rhs } => {
                let l = self.resolve(*lhs, scratch);
                let r = self.resolve(*rhs, scratch);
                if op.eval(&l, &r)? {
                    self.exec(step + 1, db, delta, scratch, out, guard)
                } else {
                    Ok(())
                }
            }
            Step::Arith {
                op,
                lhs,
                rhs,
                target,
            } => {
                let as_int = |v: Const| -> Result<i64> {
                    match v {
                        Const::Int(i) => Ok(i),
                        other => Err(DatalogError::IncomparableTerms {
                            left: other.to_string(),
                            right: "integer".to_owned(),
                        }),
                    }
                };
                let l = as_int(self.resolve(*lhs, scratch))?;
                let r = as_int(self.resolve(*rhs, scratch))?;
                let value = Const::Int(op.eval(l, r)?);
                match target {
                    ArithTarget::CheckConst(c) => {
                        if *c != value {
                            return Ok(());
                        }
                    }
                    ArithTarget::CheckSlot(s) => {
                        if scratch.bindings[*s as usize] != value {
                            return Ok(());
                        }
                    }
                    ArithTarget::Bind(s) => scratch.bindings[*s as usize] = value,
                }
                self.exec(step + 1, db, delta, scratch, out, guard)
            }
        }
    }

    fn resolve(&self, v: ValSrc, scratch: &Scratch) -> Const {
        match v {
            ValSrc::Const(c) => c,
            ValSrc::Slot(s) => scratch.bindings[s as usize],
        }
    }
}

/// Delta-variant positions of a rule within `stratum_preds`: each body
/// position holding a positive literal over a same-stratum predicate.
pub(crate) fn delta_positions(rule: &Clause, stratum_preds: &HashSet<SymId>) -> Vec<usize> {
    rule.body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            Literal::Pos(a) if stratum_preds.contains(&a.predicate) => Some(i),
            _ => None,
        })
        .collect()
}

/// Compile-and-run convenience used by ad hoc queries: evaluates `rule`
/// against `db` with a freshly compiled plan.
/// Evaluate one rule against a fixpointed database, consulting `guard`
/// during the join: ad hoc queries issued by long-lived sessions run
/// under the session's deadline / budget / cancellation (pass
/// [`EvalGuard::unlimited`] for unguarded evaluation).
pub(crate) fn eval_rule_once_guarded(
    rule: &Clause,
    db: &Database,
    guard: &EvalGuard,
) -> Result<Vec<Fact>> {
    let plan = RulePlan::compile(rule, None, db)?;
    let mut scratch = plan.new_scratch();
    let mut out = Vec::new();
    plan.eval(db, None, &mut scratch, &mut out, guard)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn plan_for(src: &str, head: &str, delta_pos: Option<usize>) -> RulePlan {
        let p = parse_program(src).unwrap();
        let db = Database::new();
        let rule = p
            .clauses()
            .iter()
            .rfind(|c| !c.is_fact() && c.head.predicate.as_str() == head)
            .expect("rule present");
        RulePlan::compile(rule, delta_pos, &db).unwrap()
    }

    #[test]
    fn delta_literal_is_scheduled_first() {
        let src = "edge(a, b). path(X, Y) :- edge(X, Y).\
                   path(X, Z) :- edge(X, Y), path(Y, Z).";
        // Delta on body position 1 (path): it should be first in the order.
        let plan = plan_for(src, "path", Some(1));
        assert!(
            plan.order_desc.contains(":- [1,0]"),
            "delta first: {}",
            plan.order_desc
        );
        assert_eq!(plan.delta_pred.unwrap().as_str(), "path");
    }

    #[test]
    fn builtins_schedule_when_bound() {
        // The comparison references Y, bound only by the second literal:
        // the planner must order it after s(Y) instead of failing.
        let src = "q(a). s(1). p(X) :- q(X), Y < 2, s(Y).";
        let plan = plan_for(src, "p", None);
        let order: &str = plan
            .order_desc
            .split('[')
            .nth(1)
            .unwrap()
            .trim_end_matches(']');
        let pos_of = |i: char| order.chars().position(|c| c == i).unwrap();
        assert!(pos_of('2') < pos_of('1'), "cmp after s(Y): {order}");
    }

    #[test]
    fn existential_set_fixed_by_textual_order() {
        // Y is existential in `not r(X, Y)` (no earlier positive binds
        // it), even though p(X, Y) would bind Y if scheduled first.
        let src = "s(a). p(a, b). r(a, c). q(X) :- s(X), not r(X, Y), p(X, Y).";
        let p = parse_program(src).unwrap();
        let rule = p.clauses().iter().find(|c| !c.is_fact()).unwrap();
        let mut db = Database::new();
        db.insert("s", vec![Const::sym("a")]);
        db.insert("p", vec![Const::sym("a"), Const::sym("b")]);
        db.insert("r", vec![Const::sym("a"), Const::sym("c")]);
        let derived = eval_rule_once_guarded(rule, &db, &EvalGuard::unlimited()).unwrap();
        // ∃Y r(a, Y) holds, so the negation fails and nothing is derived —
        // even though the (a, b) binding from p would not match r.
        assert!(derived.is_empty(), "derived: {derived:?}");
    }

    #[test]
    fn unready_builtin_reports_unsafe_variable() {
        use crate::clause::Clause;
        use crate::{Atom, CmpOp};
        // Hand-built rule (the parser/safety layer would reject it):
        // p(X) :- q(X), Z != a — Z is never bound.
        let rule = Clause::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![
                Literal::Pos(Atom::new("q", vec![Term::var("X")])),
                Literal::Cmp {
                    op: CmpOp::Ne,
                    lhs: Term::var("Z"),
                    rhs: Term::sym("a"),
                },
            ],
        );
        let db = Database::new();
        let err = RulePlan::compile(&rule, None, &db).unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeVariable { variable, .. } if variable == "Z"));
    }
}
