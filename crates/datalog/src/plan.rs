//! Rule compilation: slot-allocated join plans with greedy literal
//! ordering, executed over row-id batches.
//!
//! Each rule (and each semi-naive delta variant of it) is compiled once
//! per stratum into a [`RulePlan`]: variables become dense *slots* into a
//! reusable bindings buffer, and body literals become a sequence of
//! [`Step`]s in an execution order chosen greedily — positive literals
//! ranked by bound-argument count then estimated relation cardinality,
//! negated and built-in literals scheduled as soon as their variables are
//! bound.
//!
//! # Batched execution
//!
//! The default executor ([`RulePlan::eval`]) runs each step over a
//! *batch* of up to [`CHUNK`] candidate bindings at once, represented
//! column-major (one `Vec<Const>` per live slot). A positive scan joins
//! the whole batch against the relation in one of three ways:
//!
//! * **no bound columns** — the matching rows are computed once (a
//!   constant-column index probe, or a full scan) and cross-producted
//!   with the batch;
//! * **bound columns, small relation** (≤ [`CHUNK`] rows) — the whole
//!   relation side is hashed on its bound-column cells into a per-step
//!   table cached by relation version, so EDB relations are hashed once
//!   per evaluation and probed by every chunk of every round;
//! * **bound columns, large relation, selective constant** — when a
//!   constant column selects fewer candidate rows than the batch has
//!   bindings, the candidates are hashed per chunk and the batch probes
//!   that table (batched hash join on the small side);
//! * **bound columns, no better option** — the batch is sorted on its
//!   first bound slot and merge-joined against the column's sorted
//!   permutation index via a galloping cursor
//!   ([`crate::storage::Relation::col_cursor`]).
//!
//! Sorted permutation indexes are built lazily: each plan records the
//! `(predicate, column)` pairs it probes (`index_needs`) and the
//! evaluator seals exactly those columns at round boundaries.
//!
//! Join results are flushed to the next step in [`CHUNK`]-row batches,
//! so memory stays bounded and the evaluation guard keeps tripping
//! inside a single (possibly enormous) rule application. Negation is
//! memoized per distinct bound-cell tuple within a batch; comparisons
//! and arithmetic filter the batch columnwise.
//!
//! The previous tuple-at-a-time executor is retained verbatim as
//! [`RulePlan::eval_reference`] — it is the differential-testing oracle
//! for the batched path (see `Executor::Tuple` in [`crate::eval`]) and
//! the specification of the rule semantics.
//!
//! # Negation under reordering
//!
//! A negated literal may contain variables that occur in no positive
//! literal *textually before* it; these are existentially quantified
//! inside the negation (`¬∃Y r(X, Y)`). That existential set is fixed
//! **statically from the textual order** before any reordering, so a
//! variable stays existential even when the chosen execution order has
//! already bound it — reordering never changes which facts a rule
//! derives.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::mem;

use crate::atom::{ArithOp, CmpOp, Literal};
use crate::clause::Clause;
use crate::fx::{FxHashMap, FxHasher};
use crate::guard::{EvalGuard, GuardCursor};
use crate::storage::{key_of, Database, Fact, FactBuf, Relation};
use crate::term::{Const, SymId, Term};
use crate::{DatalogError, Result};

/// Rows per flushed batch: join pairs are forwarded to the next step in
/// groups of this size, bounding intermediate memory and keeping guard
/// checks frequent.
const CHUNK: usize = 4096;

/// A stale small-relation join table is rebuilt only when
/// `batch.n * TABLE_BUILD_RATIO >= rel.len()`: hashing a relation row
/// costs a few times more than probing, so smaller batches use the
/// sorted indexes instead.
const TABLE_BUILD_RATIO: usize = 8;

/// Minimum batch size for a merge-join column cursor. Constructing a
/// cursor sorts the index's uncovered tail (up to `INDEX_TAIL_MAX`
/// rows), which only pays off across many seeks; smaller batches probe
/// each key group through the index directly.
const CURSOR_BATCH_MIN: usize = 64;

/// One column of a positive scan.
#[derive(Clone, Copy, Debug)]
enum ScanCol {
    /// Must equal this constant (part of the index probe).
    Const(Const),
    /// Must equal the slot value bound by an earlier step (probe).
    Bound(u32),
    /// First occurrence of an unbound variable: binds the slot.
    Bind(u32),
    /// Repeated occurrence within this atom: must equal the slot value
    /// bound earlier in the same row.
    Check(u32),
}

/// One column of a negated-literal probe.
#[derive(Clone, Copy, Debug)]
enum NegCol {
    /// Must equal this constant.
    Const(Const),
    /// Must equal the slot value (non-existential variable).
    Bound(u32),
    /// Existential variable, first occurrence: captures into a local.
    Local(u32),
    /// Existential variable, repeated: must equal the captured local.
    LocalCheck(u32),
}

/// A value source for comparisons, arithmetic, and head projection.
#[derive(Clone, Copy, Debug)]
enum ValSrc {
    Const(Const),
    Slot(u32),
}

/// What an arithmetic built-in does with its result.
#[derive(Clone, Copy, Debug)]
enum ArithTarget {
    /// Bind the result into an unbound slot.
    Bind(u32),
    /// The target slot is already bound: check equality.
    CheckSlot(u32),
    /// The target is a constant: check equality.
    CheckConst(Const),
}

/// Precomputed column roles of a positive scan, consumed by the batched
/// executor (`cols` remains the source of truth for the reference
/// executor).
#[derive(Clone, Debug, Default)]
struct ScanSpec {
    /// Columns that must equal a constant.
    consts: Vec<(usize, Const)>,
    /// Columns that must equal an already-bound slot.
    bounds: Vec<(usize, u32)>,
    /// Columns whose cell binds a slot first occurring here.
    binds: Vec<(usize, u32)>,
    /// Repeated-variable columns: cell must equal the earlier column
    /// (within the same atom) that binds the shared slot.
    checks: Vec<(usize, usize)>,
    /// How to assemble an output row for the *live* slots after this
    /// step: copy from the matched fact's column (`Some(col)`) or carry
    /// from the input batch (`None`).
    gather: Vec<(u32, Option<usize>)>,
}

/// One scheduled operation of a compiled rule body.
#[derive(Clone, Debug)]
enum Step {
    /// Join against a relation (or the delta relation for the variant's
    /// distinguished body position).
    Scan {
        pred: SymId,
        from_delta: bool,
        cols: Vec<ScanCol>,
        spec: ScanSpec,
    },
    /// Prune unless `¬∃(locals) pred(cols)` holds.
    Neg {
        pred: SymId,
        cols: Vec<NegCol>,
        n_locals: usize,
        consts: Vec<(usize, Const)>,
        bounds: Vec<(usize, u32)>,
    },
    /// Prune unless the comparison holds.
    Cmp { op: CmpOp, lhs: ValSrc, rhs: ValSrc },
    /// Evaluate `lhs op rhs` and bind or check the target.
    Arith {
        op: ArithOp,
        lhs: ValSrc,
        rhs: ValSrc,
        target: ArithTarget,
    },
}

/// A column-major batch of candidate bindings: `cols` is indexed by slot
/// id, and only the slots live at the current step (the plan's `carry`
/// set) hold `n` values.
#[derive(Debug, Default)]
struct Batch {
    n: usize,
    cols: Vec<Vec<Const>>,
}

impl Batch {
    fn reset(&mut self, n_slots: usize) {
        self.n = 0;
        if self.cols.len() < n_slots {
            self.cols.resize_with(n_slots, Vec::new);
        }
        for c in &mut self.cols {
            c.clear();
        }
    }

    #[inline]
    fn get(&self, slot: u32, row: usize) -> Const {
        self.cols[slot as usize][row]
    }
}

/// A cached hash-join table for one small-relation scan step: live rows
/// satisfying the scan's constant/check columns, keyed by the hash of
/// their bound-column cells. Valid for exactly one relation version
/// ([`Relation::version`]), so it is built once per version and reused
/// across chunks and evaluation rounds — for EDB relations, exactly
/// once.
struct JoinTable {
    version: u128,
    map: FxHashMap<u64, Vec<u32>>,
}

/// Reusable per-plan evaluation buffers: the slot bindings plus one
/// pattern/local/batch/row buffer per step, taken out and restored
/// around the recursive join so no per-row allocation happens.
pub(crate) struct Scratch {
    bindings: Vec<Const>,
    patterns: Vec<Vec<Option<Const>>>,
    locals: Vec<Vec<Const>>,
    /// Per-step output batches of the batched executor.
    batches: Vec<Batch>,
    /// Per-step row-id buffers of the batched executor.
    rowbufs: Vec<Vec<u32>>,
    /// Per-step cached small-relation join tables.
    tables: Vec<Option<JoinTable>>,
    /// Guard tick state and probe counter for this plan's evaluations.
    cursor: GuardCursor,
}

impl Scratch {
    /// Take (and reset) the join-probe count accumulated since the last
    /// call, for per-rule statistics.
    pub(crate) fn take_probes(&mut self) -> u64 {
        self.cursor.take_probes()
    }
}

/// A compiled rule variant: slots, ordered steps, head projection.
#[derive(Debug)]
pub(crate) struct RulePlan {
    /// The head predicate (interned).
    pub head_pred: SymId,
    head: Vec<ValSrc>,
    steps: Vec<Step>,
    n_slots: usize,
    /// `carry[i]`: the slots (sorted) whose values batches entering step
    /// `i` carry — bound before step `i` *and* still read by step `i` or
    /// later (or the head). `carry[steps.len()]` feeds the projection.
    carry: Vec<Vec<u32>>,
    /// The textual body position reading from the delta relation, if this
    /// is a semi-naive variant.
    pub delta_pred: Option<SymId>,
    /// `(predicate, column)` pairs this plan probes by value — constant
    /// and bound columns of its stored-relation scans and negations. The
    /// evaluator seals exactly these sorted indexes at round boundaries
    /// (`Database::ensure_index_id`); unlisted columns are never indexed.
    pub(crate) index_needs: Vec<(SymId, usize)>,
    /// Human-readable description of the chosen join order.
    pub order_desc: String,
}

fn hash_cells(cells: impl Iterator<Item = Const>) -> u64 {
    let mut h = FxHasher::default();
    for c in cells {
        c.hash(&mut h);
    }
    h.finish()
}

impl RulePlan {
    /// Compile `rule` into a plan. `delta_pos` selects the body position
    /// that reads from a delta relation (semi-naive variant); `db`
    /// supplies relation cardinality estimates for the greedy ordering.
    #[allow(clippy::too_many_lines)]
    pub fn compile(rule: &Clause, delta_pos: Option<usize>, db: &Database) -> Result<Self> {
        let unsafe_var = |v: &str| DatalogError::UnsafeVariable {
            variable: v.to_owned(),
            clause: rule.to_string(),
        };

        // Slot allocation: every variable bound by a positive literal or
        // an arithmetic target gets a dense slot.
        let mut slots: HashMap<&str, u32> = HashMap::new();
        fn slot_of<'a>(v: &'a str, slots: &mut HashMap<&'a str, u32>) -> u32 {
            let next = u32::try_from(slots.len()).expect("slot overflow");
            *slots.entry(v).or_insert(next)
        }
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) => {
                    for v in a.variables() {
                        slot_of(v, &mut slots);
                    }
                }
                Literal::Arith { target, .. } => {
                    if let Some(v) = target.as_var() {
                        slot_of(v, &mut slots);
                    }
                }
                Literal::Neg(_) | Literal::Cmp { .. } => {}
            }
        }

        // Existential sets of negated literals, fixed by TEXTUAL order:
        // vars not bound by any earlier positive literal or arithmetic
        // target are quantified inside the negation.
        let mut textually_bound: HashSet<&str> = HashSet::new();
        let mut existential: Vec<Option<HashSet<&str>>> = Vec::with_capacity(rule.body.len());
        for lit in &rule.body {
            match lit {
                Literal::Neg(a) => {
                    let e: HashSet<&str> = a
                        .variables()
                        .filter(|v| !textually_bound.contains(v))
                        .collect();
                    existential.push(Some(e));
                }
                Literal::Pos(a) => {
                    textually_bound.extend(a.variables());
                    existential.push(None);
                }
                Literal::Arith { target, .. } => {
                    textually_bound.extend(target.as_var());
                    existential.push(None);
                }
                Literal::Cmp { .. } => existential.push(None),
            }
        }

        // Greedy scheduling.
        let mut bound: HashSet<u32> = HashSet::new();
        let mut scheduled = vec![false; rule.body.len()];
        let mut steps: Vec<Step> = Vec::with_capacity(rule.body.len());
        let mut carry: Vec<Vec<u32>> = Vec::with_capacity(rule.body.len() + 1);
        let mut order: Vec<usize> = Vec::with_capacity(rule.body.len());

        let snap = |bound: &HashSet<u32>| -> Vec<u32> {
            let mut v: Vec<u32> = bound.iter().copied().collect();
            v.sort_unstable();
            v
        };

        let val_src = |t: &Term, slots: &HashMap<&str, u32>| -> Result<ValSrc> {
            match t {
                Term::Const(c) => Ok(ValSrc::Const(*c)),
                Term::Var(v) => slots
                    .get(v.as_ref())
                    .map(|&s| ValSrc::Slot(s))
                    .ok_or_else(|| unsafe_var(v)),
            }
        };

        while scheduled.iter().any(|&s| !s) {
            // Flush every ready non-positive literal, in textual order.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for i in 0..rule.body.len() {
                    if scheduled[i] {
                        continue;
                    }
                    match &rule.body[i] {
                        Literal::Neg(a) => {
                            let e = existential[i].as_ref().expect("neg has existential set");
                            let ready = a.variables().all(|v| {
                                e.contains(v) || slots.get(v).is_some_and(|s| bound.contains(s))
                            });
                            if !ready {
                                continue;
                            }
                            let mut local_of: HashMap<&str, u32> = HashMap::new();
                            let mut cols = Vec::with_capacity(a.terms.len());
                            for t in &a.terms {
                                cols.push(match t {
                                    Term::Const(c) => NegCol::Const(*c),
                                    Term::Var(v) if e.contains(v.as_ref()) => {
                                        let next =
                                            u32::try_from(local_of.len()).expect("local overflow");
                                        match local_of.entry(v.as_ref()) {
                                            std::collections::hash_map::Entry::Occupied(o) => {
                                                NegCol::LocalCheck(*o.get())
                                            }
                                            std::collections::hash_map::Entry::Vacant(va) => {
                                                va.insert(next);
                                                NegCol::Local(next)
                                            }
                                        }
                                    }
                                    Term::Var(v) => NegCol::Bound(slots[v.as_ref()]),
                                });
                            }
                            let consts = cols
                                .iter()
                                .enumerate()
                                .filter_map(|(c, col)| match col {
                                    NegCol::Const(v) => Some((c, *v)),
                                    _ => None,
                                })
                                .collect();
                            let neg_bounds = cols
                                .iter()
                                .enumerate()
                                .filter_map(|(c, col)| match col {
                                    NegCol::Bound(s) => Some((c, *s)),
                                    _ => None,
                                })
                                .collect();
                            carry.push(snap(&bound));
                            steps.push(Step::Neg {
                                pred: a.predicate,
                                cols,
                                n_locals: local_of.len(),
                                consts,
                                bounds: neg_bounds,
                            });
                            scheduled[i] = true;
                            order.push(i);
                            progressed = true;
                        }
                        Literal::Cmp { op, lhs, rhs } => {
                            let ready = [lhs, rhs].into_iter().all(|t| {
                                t.as_var()
                                    .is_none_or(|v| slots.get(v).is_some_and(|s| bound.contains(s)))
                            });
                            if !ready {
                                continue;
                            }
                            carry.push(snap(&bound));
                            steps.push(Step::Cmp {
                                op: *op,
                                lhs: val_src(lhs, &slots)?,
                                rhs: val_src(rhs, &slots)?,
                            });
                            scheduled[i] = true;
                            order.push(i);
                            progressed = true;
                        }
                        Literal::Arith {
                            target,
                            lhs,
                            op,
                            rhs,
                        } => {
                            let ready = [lhs, rhs].into_iter().all(|t| {
                                t.as_var()
                                    .is_none_or(|v| slots.get(v).is_some_and(|s| bound.contains(s)))
                            });
                            if !ready {
                                continue;
                            }
                            carry.push(snap(&bound));
                            let tgt = match target {
                                Term::Const(c) => ArithTarget::CheckConst(*c),
                                Term::Var(v) => {
                                    let s = slots[v.as_ref()];
                                    if bound.contains(&s) {
                                        ArithTarget::CheckSlot(s)
                                    } else {
                                        bound.insert(s);
                                        ArithTarget::Bind(s)
                                    }
                                }
                            };
                            steps.push(Step::Arith {
                                op: *op,
                                lhs: val_src(lhs, &slots)?,
                                rhs: val_src(rhs, &slots)?,
                                target: tgt,
                            });
                            scheduled[i] = true;
                            order.push(i);
                            progressed = true;
                        }
                        Literal::Pos(_) => {}
                    }
                }
            }

            // Pick the best remaining positive literal: most bound
            // argument positions, then smallest estimated cardinality,
            // then textual position (for determinism).
            let best = (0..rule.body.len())
                .filter(|&i| !scheduled[i])
                .filter_map(|i| match &rule.body[i] {
                    Literal::Pos(a) => Some((i, a)),
                    _ => None,
                })
                .min_by_key(|&(i, a)| {
                    let bound_args = a
                        .terms
                        .iter()
                        .filter(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => {
                                slots.get(v.as_ref()).is_some_and(|s| bound.contains(s))
                            }
                        })
                        .count();
                    let est = if delta_pos == Some(i) {
                        // Deltas are typically tiny: rank them below every
                        // full relation so they are scheduled early.
                        0
                    } else {
                        db.relation_id(a.predicate).map_or(0, Relation::len) + 1
                    };
                    (usize::MAX - bound_args, est, i)
                });
            let Some((i, a)) = best else { break };
            let mut bound_here: HashSet<u32> = HashSet::new();
            let mut cols = Vec::with_capacity(a.terms.len());
            for t in &a.terms {
                cols.push(match t {
                    Term::Const(c) => ScanCol::Const(*c),
                    Term::Var(v) => {
                        let s = slots[v.as_ref()];
                        if bound.contains(&s) {
                            ScanCol::Bound(s)
                        } else if bound_here.contains(&s) {
                            ScanCol::Check(s)
                        } else {
                            bound_here.insert(s);
                            ScanCol::Bind(s)
                        }
                    }
                });
            }
            let mut spec = ScanSpec::default();
            let mut first_col_of_slot: HashMap<u32, usize> = HashMap::new();
            for (c, col) in cols.iter().enumerate() {
                match col {
                    ScanCol::Const(v) => spec.consts.push((c, *v)),
                    ScanCol::Bound(s) => spec.bounds.push((c, *s)),
                    ScanCol::Bind(s) => {
                        first_col_of_slot.insert(*s, c);
                        spec.binds.push((c, *s));
                    }
                    ScanCol::Check(s) => spec.checks.push((c, first_col_of_slot[s])),
                }
            }
            carry.push(snap(&bound));
            bound.extend(bound_here);
            steps.push(Step::Scan {
                pred: a.predicate,
                from_delta: delta_pos == Some(i),
                cols,
                spec,
            });
            scheduled[i] = true;
            order.push(i);
        }

        // Anything left never became ready: a built-in over variables no
        // positive literal binds. (The textual evaluator paniced here.)
        if let Some(i) = scheduled.iter().position(|&s| !s) {
            let v = rule.body[i]
                .variables()
                .into_iter()
                .find(|v| slots.get(v).is_none_or(|s| !bound.contains(s)))
                .unwrap_or("_");
            return Err(unsafe_var(v));
        }
        carry.push(snap(&bound));

        // Head projection (safety guarantees every head var is bound).
        let head = rule
            .head
            .terms
            .iter()
            .map(|t| val_src(t, &slots))
            .collect::<Result<Vec<_>>>()?;

        // Liveness trim: a batch entering step i only needs the slots
        // some step >= i (or the head) still reads. Then fix each scan's
        // gather list: its output rows are exactly carry[i + 1].
        let mut live: HashSet<u32> = head
            .iter()
            .filter_map(|h| match h {
                ValSrc::Slot(s) => Some(*s),
                ValSrc::Const(_) => None,
            })
            .collect();
        carry[steps.len()].retain(|s| live.contains(s));
        for i in (0..steps.len()).rev() {
            let slot_reads = |v: &ValSrc, live: &mut HashSet<u32>| {
                if let ValSrc::Slot(s) = v {
                    live.insert(*s);
                }
            };
            match &steps[i] {
                Step::Scan { spec, .. } => {
                    for &(_, s) in &spec.bounds {
                        live.insert(s);
                    }
                }
                Step::Neg { bounds, .. } => {
                    for &(_, s) in bounds {
                        live.insert(s);
                    }
                }
                Step::Cmp { lhs, rhs, .. } => {
                    slot_reads(lhs, &mut live);
                    slot_reads(rhs, &mut live);
                }
                Step::Arith {
                    lhs, rhs, target, ..
                } => {
                    slot_reads(lhs, &mut live);
                    slot_reads(rhs, &mut live);
                    if let ArithTarget::CheckSlot(s) = target {
                        live.insert(*s);
                    }
                }
            }
            carry[i].retain(|s| live.contains(s));
        }
        for i in 0..steps.len() {
            let out_slots = carry[i + 1].clone();
            if let Step::Scan { spec, .. } = &mut steps[i] {
                spec.gather = out_slots
                    .iter()
                    .map(|&slot| {
                        let from = spec
                            .binds
                            .iter()
                            .find(|&&(_, s)| s == slot)
                            .map(|&(c, _)| c);
                        (slot, from)
                    })
                    .collect();
            }
        }

        // Index demand: every column a stored-relation scan or negation
        // probes by value. Delta scans enumerate the delta fact list and
        // probe nothing.
        let mut index_needs: Vec<(SymId, usize)> = Vec::new();
        for s in &steps {
            match s {
                Step::Scan {
                    pred,
                    from_delta: false,
                    spec,
                    ..
                } => {
                    index_needs.extend(spec.consts.iter().map(|&(c, _)| (*pred, c)));
                    index_needs.extend(spec.bounds.iter().map(|&(c, _)| (*pred, c)));
                }
                Step::Neg {
                    pred,
                    consts,
                    bounds,
                    ..
                } => {
                    index_needs.extend(consts.iter().map(|&(c, _)| (*pred, c)));
                    index_needs.extend(bounds.iter().map(|&(c, _)| (*pred, c)));
                }
                Step::Scan { .. } | Step::Cmp { .. } | Step::Arith { .. } => {}
            }
        }
        index_needs.sort_unstable();
        index_needs.dedup();

        let order_desc = format!(
            "{}{} :- [{}]",
            rule.head.predicate,
            match delta_pos {
                Some(p) => format!(" (Δ@{p})"),
                None => String::new(),
            },
            order
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );

        Ok(RulePlan {
            head_pred: rule.head.predicate,
            head,
            steps,
            n_slots: slots.len(),
            carry,
            delta_pred: delta_pos.map(|p| {
                rule.body[p]
                    .atom()
                    .expect("delta position is a positive literal")
                    .predicate
            }),
            index_needs,
            order_desc,
        })
    }

    /// Allocate evaluation buffers sized for this plan.
    pub fn new_scratch(&self) -> Scratch {
        Scratch {
            bindings: vec![Const::Int(0); self.n_slots],
            patterns: self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Scan { cols, .. } => Vec::with_capacity(cols.len()),
                    Step::Neg { cols, .. } => Vec::with_capacity(cols.len()),
                    _ => Vec::new(),
                })
                .collect(),
            locals: self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Neg { n_locals, .. } => vec![Const::Int(0); *n_locals],
                    _ => Vec::new(),
                })
                .collect(),
            batches: self.steps.iter().map(|_| Batch::default()).collect(),
            rowbufs: self.steps.iter().map(|_| Vec::new()).collect(),
            tables: self.steps.iter().map(|_| None).collect(),
            cursor: GuardCursor::new(),
        }
    }

    /// Evaluate the plan with the batched executor, appending every head
    /// instantiation (possibly with duplicates) to `out`. `delta`
    /// supplies the delta facts when this is a semi-naive variant; deltas
    /// are plain fact lists (no indexes) because the planner schedules
    /// the delta scan early, where it is enumerated rather than probed.
    /// The `guard` is consulted at tick granularity inside the join loop
    /// and once more on completion, so deadline, budget, and cancellation
    /// trips surface from within a single (possibly enormous) rule
    /// application.
    ///
    /// The emitted *set* of head tuples is identical to
    /// [`RulePlan::eval_reference`]; the order of `out` may differ.
    pub fn eval(
        &self,
        db: &Database,
        delta: Option<&FactBuf>,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        debug_assert_eq!(scratch.bindings.len(), self.n_slots);
        let mut root = Batch::default();
        root.reset(self.n_slots);
        root.n = 1; // the single empty binding
        self.exec_batch(0, db, delta, &root, scratch, out, guard)?;
        scratch.cursor.flush(guard)
    }

    #[inline]
    fn resolve_batch(&self, v: ValSrc, batch: &Batch, row: usize) -> Const {
        match v {
            ValSrc::Const(c) => c,
            ValSrc::Slot(s) => batch.get(s, row),
        }
    }

    /// Copy the carried slots of `row` from `batch` into `child`.
    #[inline]
    fn carry_row(&self, step: usize, batch: &Batch, row: usize, child: &mut Batch) {
        for &slot in &self.carry[step + 1] {
            child.cols[slot as usize].push(batch.get(slot, row));
        }
        child.n += 1;
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn exec_batch(
        &self,
        step: usize,
        db: &Database,
        delta: Option<&FactBuf>,
        batch: &Batch,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        if batch.n == 0 {
            return Ok(());
        }
        let Some(s) = self.steps.get(step) else {
            for row in 0..batch.n {
                scratch.cursor.emit(guard)?;
                out.push_row(self.head.iter().map(|h| self.resolve_batch(*h, batch, row)));
            }
            return Ok(());
        };
        match s {
            Step::Scan {
                pred,
                from_delta,
                cols,
                spec,
            } => {
                let mut child = mem::take(&mut scratch.batches[step]);
                child.reset(self.n_slots);
                let mut result = if *from_delta {
                    self.scan_delta(
                        step, spec, db, delta, batch, &mut child, scratch, out, guard,
                    )
                } else {
                    self.scan_rel(
                        step,
                        *pred,
                        spec,
                        cols.len(),
                        db,
                        delta,
                        batch,
                        &mut child,
                        scratch,
                        out,
                        guard,
                    )
                };
                if result.is_ok() && child.n > 0 {
                    result = self.exec_batch(step + 1, db, delta, &child, scratch, out, guard);
                }
                scratch.batches[step] = child;
                result
            }
            Step::Neg {
                pred,
                cols,
                n_locals,
                consts,
                bounds,
            } => {
                let mut child = mem::take(&mut scratch.batches[step]);
                child.reset(self.n_slots);
                let mut result = Ok(());
                if let Some(rel) = db.relation_id(*pred) {
                    let mut pattern = mem::take(&mut scratch.patterns[step]);
                    pattern.clear();
                    pattern.resize(cols.len(), None);
                    for &(c, v) in consts {
                        pattern[c] = Some(v);
                    }
                    let mut locals = mem::take(&mut scratch.locals[step]);
                    locals.clear();
                    locals.resize(*n_locals, Const::Int(0));
                    // Memoize existence per distinct bound-cell tuple:
                    // batches routinely repeat the same join key.
                    let mut memo: FxHashMap<Box<[Const]>, bool> = FxHashMap::default();
                    let mut key: Vec<Const> = Vec::with_capacity(bounds.len());
                    for row in 0..batch.n {
                        key.clear();
                        key.extend(bounds.iter().map(|&(_, s)| batch.get(s, row)));
                        let exists = match memo.get(key.as_slice()) {
                            Some(&e) => e,
                            None => {
                                for &(c, s) in bounds {
                                    pattern[c] = Some(batch.get(s, row));
                                }
                                let mut rows: u32 = 0;
                                let e = rel.matching(&pattern).any(|fact| {
                                    rows = rows.saturating_add(1);
                                    for (i, col) in cols.iter().enumerate() {
                                        match col {
                                            NegCol::Local(l) => locals[*l as usize] = fact[i],
                                            NegCol::LocalCheck(l) => {
                                                if locals[*l as usize] != fact[i] {
                                                    return false;
                                                }
                                            }
                                            NegCol::Const(_) | NegCol::Bound(_) => {}
                                        }
                                    }
                                    true
                                });
                                result = scratch.cursor.probe_n(rows, guard);
                                memo.insert(key.clone().into_boxed_slice(), e);
                                e
                            }
                        };
                        if result.is_err() {
                            break;
                        }
                        if !exists {
                            self.carry_row(step, batch, row, &mut child);
                        }
                    }
                    scratch.patterns[step] = pattern;
                    scratch.locals[step] = locals;
                } else {
                    // Missing relation: the negation holds for every row.
                    for row in 0..batch.n {
                        self.carry_row(step, batch, row, &mut child);
                    }
                }
                if result.is_ok() {
                    result = self.exec_batch(step + 1, db, delta, &child, scratch, out, guard);
                }
                scratch.batches[step] = child;
                result
            }
            Step::Cmp { op, lhs, rhs } => {
                let mut child = mem::take(&mut scratch.batches[step]);
                child.reset(self.n_slots);
                let mut result = Ok(());
                for row in 0..batch.n {
                    let l = self.resolve_batch(*lhs, batch, row);
                    let r = self.resolve_batch(*rhs, batch, row);
                    match op.eval(&l, &r) {
                        Ok(true) => self.carry_row(step, batch, row, &mut child),
                        Ok(false) => {}
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                if result.is_ok() {
                    result = self.exec_batch(step + 1, db, delta, &child, scratch, out, guard);
                }
                scratch.batches[step] = child;
                result
            }
            Step::Arith {
                op,
                lhs,
                rhs,
                target,
            } => {
                let as_int = |v: Const| -> Result<i64> {
                    match v {
                        Const::Int(i) => Ok(i),
                        other => Err(DatalogError::IncomparableTerms {
                            left: other.to_string(),
                            right: "integer".to_owned(),
                        }),
                    }
                };
                let mut child = mem::take(&mut scratch.batches[step]);
                child.reset(self.n_slots);
                let mut result = Ok(());
                for row in 0..batch.n {
                    let value = as_int(self.resolve_batch(*lhs, batch, row))
                        .and_then(|l| as_int(self.resolve_batch(*rhs, batch, row)).map(|r| (l, r)))
                        .and_then(|(l, r)| op.eval(l, r));
                    let value = match value {
                        Ok(v) => Const::Int(v),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    };
                    let keep = match target {
                        ArithTarget::CheckConst(c) => *c == value,
                        ArithTarget::CheckSlot(s) => batch.get(*s, row) == value,
                        ArithTarget::Bind(_) => true,
                    };
                    if keep {
                        for &slot in &self.carry[step + 1] {
                            let v = match target {
                                // The bound slot is new: the parent batch
                                // has no column for it.
                                ArithTarget::Bind(b) if *b == slot => value,
                                _ => batch.get(slot, row),
                            };
                            child.cols[slot as usize].push(v);
                        }
                        child.n += 1;
                    }
                }
                if result.is_ok() {
                    result = self.exec_batch(step + 1, db, delta, &child, scratch, out, guard);
                }
                scratch.batches[step] = child;
                result
            }
        }
    }

    /// Append one join pair — input-batch row × relation row — to the
    /// child batch, flushing a full child downstream.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn push_rel_pair(
        &self,
        step: usize,
        spec: &ScanSpec,
        batch: &Batch,
        row: usize,
        rel: &Relation,
        rel_row: u32,
        child: &mut Batch,
        db: &Database,
        delta: Option<&FactBuf>,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        for &(slot, from) in &spec.gather {
            let v = match from {
                Some(c) => rel.cell(rel_row, c),
                None => batch.get(slot, row),
            };
            child.cols[slot as usize].push(v);
        }
        child.n += 1;
        if child.n >= CHUNK {
            self.exec_batch(step + 1, db, delta, child, scratch, out, guard)?;
            child.reset(self.n_slots);
        }
        Ok(())
    }

    /// Drop candidate rows violating this scan's constant columns or
    /// intra-atom repeated variables. The merge path seeks on a *bound*
    /// column, so even a single const column must still be checked here.
    fn retain_scan_rows(spec: &ScanSpec, rel: &Relation, rows: &mut Vec<u32>) {
        if !spec.consts.is_empty() || !spec.checks.is_empty() {
            rows.retain(|&r| {
                spec.consts.iter().all(|&(c, v)| rel.cell(r, c) == v)
                    && spec
                        .checks
                        .iter()
                        .all(|&(c, b)| rel.cell(r, c) == rel.cell(r, b))
            });
        }
    }

    /// Batched scan of a stored relation. Fills `child` with join pairs
    /// (flushing at [`CHUNK`]); the caller flushes the remainder.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn scan_rel(
        &self,
        step: usize,
        pred: SymId,
        spec: &ScanSpec,
        arity: usize,
        db: &Database,
        delta: Option<&FactBuf>,
        batch: &Batch,
        child: &mut Batch,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        let Some(rel) = db.relation_id(pred) else {
            return Ok(());
        };
        if rel.arity() != Some(arity) {
            return Ok(()); // empty (or never-populated) relation
        }
        let clamp = |n: usize| u32::try_from(n).unwrap_or(u32::MAX);

        if spec.bounds.is_empty() {
            // No join columns: the matching rows are the same for every
            // batch row. Compute them once, then cross-product.
            let mut rows = mem::take(&mut scratch.rowbufs[step]);
            rows.clear();
            match spec
                .consts
                .iter()
                .copied()
                .min_by_key(|&(c, v)| rel.count_eq(c, v))
            {
                Some((c, v)) => rel.probe_rows(c, v, &mut rows),
                None => rel.live_rows(&mut rows),
            }
            Self::retain_scan_rows(spec, rel, &mut rows);
            let mut result = Ok(());
            'batch: for row in 0..batch.n {
                result = scratch.cursor.probe_n(clamp(rows.len()), guard);
                if result.is_err() {
                    break;
                }
                for &r in &rows {
                    result = self.push_rel_pair(
                        step, spec, batch, row, rel, r, child, db, delta, scratch, out, guard,
                    );
                    if result.is_err() {
                        break 'batch;
                    }
                }
            }
            scratch.rowbufs[step] = rows;
            return result;
        }

        // Bound columns, small relation: hash join against a cached
        // per-step table of the whole relation side, built once per
        // relation version and reused across chunks and rounds. EDB
        // relations never change mid-evaluation, so they are hashed
        // exactly once per run. Building costs O(relation), so a stale
        // cache is only rebuilt when the batch is large enough to
        // amortize it — one-off small evaluations (incremental delta
        // propagation, point queries) fall through to the index paths.
        let table_valid = scratch.tables[step]
            .as_ref()
            .is_some_and(|t| t.version == rel.version());
        if rel.len() <= CHUNK && (table_valid || batch.n * TABLE_BUILD_RATIO >= rel.len()) {
            if !table_valid {
                let mut rows = mem::take(&mut scratch.rowbufs[step]);
                rows.clear();
                rel.live_rows(&mut rows);
                Self::retain_scan_rows(spec, rel, &mut rows);
                let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                for &r in &rows {
                    let h = hash_cells(spec.bounds.iter().map(|&(c, _)| rel.cell(r, c)));
                    map.entry(h).or_default().push(r);
                }
                scratch.rowbufs[step] = rows;
                scratch.tables[step] = Some(JoinTable {
                    version: rel.version(),
                    map,
                });
            }
            let table = scratch.tables[step].take().expect("table built above");
            let mut result = Ok(());
            'small: for row in 0..batch.n {
                let h = hash_cells(spec.bounds.iter().map(|&(_, s)| batch.get(s, row)));
                let Some(cands) = table.map.get(&h) else {
                    continue;
                };
                result = scratch.cursor.probe_n(clamp(cands.len()), guard);
                if result.is_err() {
                    break;
                }
                for &r in cands {
                    if spec
                        .bounds
                        .iter()
                        .all(|&(c, s)| rel.cell(r, c) == batch.get(s, row))
                    {
                        result = self.push_rel_pair(
                            step, spec, batch, row, rel, r, child, db, delta, scratch, out, guard,
                        );
                        if result.is_err() {
                            break 'small;
                        }
                    }
                }
            }
            scratch.tables[step] = Some(table);
            return result;
        }

        // Large relation, selective constant: probe the constant column,
        // hash the (now small) candidate set per chunk.
        let const_driver = spec
            .consts
            .iter()
            .copied()
            .map(|(c, v)| (rel.count_eq(c, v), c, v))
            .min();
        if let Some((est, dc, dv)) = const_driver.filter(|&(est, ..)| est <= batch.n) {
            let _ = est;
            let mut rows = mem::take(&mut scratch.rowbufs[step]);
            rows.clear();
            rel.probe_rows(dc, dv, &mut rows);
            Self::retain_scan_rows(spec, rel, &mut rows);
            // Build the hash table on the (small) relation side, keyed by
            // the bound-column cells; the batch probes it.
            let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for &r in &rows {
                let h = hash_cells(spec.bounds.iter().map(|&(c, _)| rel.cell(r, c)));
                table.entry(h).or_default().push(r);
            }
            let mut result = Ok(());
            'hash: for row in 0..batch.n {
                let h = hash_cells(spec.bounds.iter().map(|&(_, s)| batch.get(s, row)));
                let Some(cands) = table.get(&h) else {
                    continue;
                };
                result = scratch.cursor.probe_n(clamp(cands.len()), guard);
                if result.is_err() {
                    break;
                }
                for &r in cands {
                    if spec
                        .bounds
                        .iter()
                        .all(|&(c, s)| rel.cell(r, c) == batch.get(s, row))
                    {
                        result = self.push_rel_pair(
                            step, spec, batch, row, rel, r, child, db, delta, scratch, out, guard,
                        );
                        if result.is_err() {
                            break 'hash;
                        }
                    }
                }
            }
            scratch.rowbufs[step] = rows;
            return result;
        }

        // Merge join: sort the batch on its first bound slot (keys
        // computed once, not per comparison) and walk the relation
        // column's sorted permutation index with a galloping cursor — one
        // forward merge instead of a hash probe per row. Cursor
        // construction sorts the index's uncovered tail, so batches too
        // small to amortize that probe each key group directly instead
        // (binary search per run plus an unsorted-tail scan).
        let (jcol, jslot) = spec.bounds[0];
        let mut order: Vec<(u128, u32)> = (0..batch.n)
            .map(|r| (key_of(batch.get(jslot, r)), clamp(r)))
            .collect();
        order.sort_unstable();
        let mut cur = (batch.n >= CURSOR_BATCH_MIN).then(|| rel.col_cursor(jcol));
        let mut rows = mem::take(&mut scratch.rowbufs[step]);
        let mut result = Ok(());
        let mut i = 0;
        // Adaptive defection: with two or more bound columns the merge
        // join seeks on the first and filters the rest per row, so a
        // low-selectivity first column can seek far more rows than the
        // relation holds. Once the seeked row count exceeds one full
        // scan, the remaining key groups defect to a hash join — hash
        // them on all bound columns and stream the relation through the
        // table once. Total work is bounded at roughly twice the better
        // strategy without relying on cardinality estimates.
        let bail = rel.len().saturating_add(CHUNK);
        let mut seeked = 0usize;
        'merge: while i < order.len() {
            if spec.bounds.len() >= 2 && seeked > bail {
                let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                for &(_, br) in &order[i..] {
                    let row = br as usize;
                    let h = hash_cells(spec.bounds.iter().map(|&(_, s)| batch.get(s, row)));
                    table.entry(h).or_default().push(br);
                }
                rows.clear();
                rel.live_rows(&mut rows);
                Self::retain_scan_rows(spec, rel, &mut rows);
                'scan: for &r in &rows {
                    let h = hash_cells(spec.bounds.iter().map(|&(c, _)| rel.cell(r, c)));
                    let Some(cands) = table.get(&h) else { continue };
                    result = scratch.cursor.probe_n(clamp(cands.len()), guard);
                    if result.is_err() {
                        break;
                    }
                    for &br in cands {
                        let row = br as usize;
                        if spec
                            .bounds
                            .iter()
                            .all(|&(c, s)| rel.cell(r, c) == batch.get(s, row))
                        {
                            result = self.push_rel_pair(
                                step, spec, batch, row, rel, r, child, db, delta, scratch, out,
                                guard,
                            );
                            if result.is_err() {
                                break 'scan;
                            }
                        }
                    }
                }
                break 'merge;
            }
            let k = order[i].0;
            let v = batch.get(jslot, order[i].1 as usize);
            let mut j = i + 1;
            while j < order.len() && order[j].0 == k {
                j += 1;
            }
            rows.clear();
            match &mut cur {
                Some(cur) => cur.seek(v, &mut rows),
                None => rel.probe_rows(jcol, v, &mut rows),
            }
            Self::retain_scan_rows(spec, rel, &mut rows);
            seeked += rows.len();
            result = scratch
                .cursor
                .probe_n(clamp(rows.len().saturating_mul(j - i)), guard);
            if result.is_err() {
                break;
            }
            for &(_, br) in &order[i..j] {
                let row = br as usize;
                for &r in &rows {
                    if spec.bounds[1..]
                        .iter()
                        .all(|&(c, s)| rel.cell(r, c) == batch.get(s, row))
                    {
                        result = self.push_rel_pair(
                            step, spec, batch, row, rel, r, child, db, delta, scratch, out, guard,
                        );
                        if result.is_err() {
                            break 'merge;
                        }
                    }
                }
            }
            i = j;
        }
        scratch.rowbufs[step] = rows;
        result
    }

    /// Batched scan of the semi-naive delta (a plain fact list): nested
    /// loop, outer over delta facts, inner over batch rows. The planner
    /// schedules delta scans early, so the batch side is small here.
    #[allow(clippy::too_many_arguments)]
    fn scan_delta(
        &self,
        step: usize,
        spec: &ScanSpec,
        db: &Database,
        delta: Option<&FactBuf>,
        batch: &Batch,
        child: &mut Batch,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        let facts = delta.expect("delta variant evaluated without a delta");
        let clamp = |n: usize| u32::try_from(n).unwrap_or(u32::MAX);
        let mut result = Ok(());
        'facts: for fi in 0..facts.len() {
            let fact = facts.row(fi);
            result = scratch.cursor.probe_n(clamp(batch.n), guard);
            if result.is_err() {
                break;
            }
            if !spec.consts.iter().all(|&(c, v)| fact[c] == v)
                || !spec.checks.iter().all(|&(c, b)| fact[c] == fact[b])
            {
                continue;
            }
            for row in 0..batch.n {
                if !spec
                    .bounds
                    .iter()
                    .all(|&(c, s)| batch.get(s, row) == fact[c])
                {
                    continue;
                }
                for &(slot, from) in &spec.gather {
                    let v = match from {
                        Some(c) => fact[c],
                        None => batch.get(slot, row),
                    };
                    child.cols[slot as usize].push(v);
                }
                child.n += 1;
                if child.n >= CHUNK {
                    result = self.exec_batch(step + 1, db, delta, child, scratch, out, guard);
                    child.reset(self.n_slots);
                    if result.is_err() {
                        break 'facts;
                    }
                }
            }
        }
        result
    }

    /// Evaluate the plan with the retained tuple-at-a-time executor: the
    /// reference semantics the batched path is differentially tested
    /// against (and an escape hatch, via `Executor::Tuple`). Same
    /// contract as [`RulePlan::eval`]; the emitted multiset of head
    /// tuples is identical, only the order of `out` may differ.
    pub fn eval_reference(
        &self,
        db: &Database,
        delta: Option<&FactBuf>,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        debug_assert_eq!(scratch.bindings.len(), self.n_slots);
        self.exec_tuple(0, db, delta, scratch, out, guard)?;
        scratch.cursor.flush(guard)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_tuple(
        &self,
        step: usize,
        db: &Database,
        delta: Option<&FactBuf>,
        scratch: &mut Scratch,
        out: &mut FactBuf,
        guard: &EvalGuard,
    ) -> Result<()> {
        let Some(s) = self.steps.get(step) else {
            scratch.cursor.emit(guard)?;
            out.push_row(self.head.iter().map(|h| match h {
                ValSrc::Const(c) => *c,
                ValSrc::Slot(s) => scratch.bindings[*s as usize],
            }));
            return Ok(());
        };
        match s {
            Step::Scan {
                pred,
                from_delta,
                cols,
                spec: _,
            } => {
                if *from_delta {
                    // Delta facts are filtered inline — no pattern probe,
                    // no index: the whole delta is consumed anyway.
                    let facts = delta.expect("delta variant evaluated without a delta");
                    let mut result = Ok(());
                    'facts: for fi in 0..facts.len() {
                        let fact = facts.row(fi);
                        result = scratch.cursor.probe(guard);
                        if result.is_err() {
                            break;
                        }
                        for (i, col) in cols.iter().enumerate() {
                            match col {
                                ScanCol::Const(c) => {
                                    if *c != fact[i] {
                                        continue 'facts;
                                    }
                                }
                                ScanCol::Bound(s) | ScanCol::Check(s) => {
                                    if scratch.bindings[*s as usize] != fact[i] {
                                        continue 'facts;
                                    }
                                }
                                ScanCol::Bind(s) => scratch.bindings[*s as usize] = fact[i],
                            }
                        }
                        result = self.exec_tuple(step + 1, db, delta, scratch, out, guard);
                        if result.is_err() {
                            break;
                        }
                    }
                    return result;
                }
                let rel = match db.relation_id(*pred) {
                    Some(r) => r,
                    None => return Ok(()), // empty relation: no matches
                };
                let mut pattern = mem::take(&mut scratch.patterns[step]);
                pattern.clear();
                for col in cols {
                    pattern.push(match col {
                        ScanCol::Const(c) => Some(*c),
                        ScanCol::Bound(s) => Some(scratch.bindings[*s as usize]),
                        ScanCol::Bind(_) | ScanCol::Check(_) => None,
                    });
                }
                let mut result = Ok(());
                for fact in rel.matching(&pattern) {
                    result = scratch.cursor.probe(guard);
                    if result.is_err() {
                        break;
                    }
                    let mut ok = true;
                    for (i, col) in cols.iter().enumerate() {
                        match col {
                            ScanCol::Bind(s) => scratch.bindings[*s as usize] = fact[i],
                            ScanCol::Check(s) => {
                                if scratch.bindings[*s as usize] != fact[i] {
                                    ok = false;
                                    break;
                                }
                            }
                            ScanCol::Const(_) | ScanCol::Bound(_) => {}
                        }
                    }
                    if ok {
                        result = self.exec_tuple(step + 1, db, delta, scratch, out, guard);
                        if result.is_err() {
                            break;
                        }
                    }
                }
                scratch.patterns[step] = pattern;
                result
            }
            Step::Neg {
                pred,
                cols,
                n_locals,
                ..
            } => {
                if let Some(rel) = db.relation_id(*pred) {
                    let mut pattern = mem::take(&mut scratch.patterns[step]);
                    pattern.clear();
                    for col in cols {
                        pattern.push(match col {
                            NegCol::Const(c) => Some(*c),
                            NegCol::Bound(s) => Some(scratch.bindings[*s as usize]),
                            NegCol::Local(_) | NegCol::LocalCheck(_) => None,
                        });
                    }
                    let mut locals = mem::take(&mut scratch.locals[step]);
                    locals.clear();
                    locals.resize(*n_locals, Const::Int(0));
                    let mut rows: u32 = 0;
                    let exists = rel.matching(&pattern).any(|fact| {
                        rows = rows.saturating_add(1);
                        for (i, col) in cols.iter().enumerate() {
                            match col {
                                NegCol::Local(l) => locals[*l as usize] = fact[i],
                                NegCol::LocalCheck(l) => {
                                    if locals[*l as usize] != fact[i] {
                                        return false;
                                    }
                                }
                                NegCol::Const(_) | NegCol::Bound(_) => {}
                            }
                        }
                        true
                    });
                    scratch.patterns[step] = pattern;
                    scratch.locals[step] = locals;
                    scratch.cursor.probe_n(rows, guard)?;
                    if exists {
                        return Ok(());
                    }
                }
                self.exec_tuple(step + 1, db, delta, scratch, out, guard)
            }
            Step::Cmp { op, lhs, rhs } => {
                let l = self.resolve(*lhs, scratch);
                let r = self.resolve(*rhs, scratch);
                if op.eval(&l, &r)? {
                    self.exec_tuple(step + 1, db, delta, scratch, out, guard)
                } else {
                    Ok(())
                }
            }
            Step::Arith {
                op,
                lhs,
                rhs,
                target,
            } => {
                let as_int = |v: Const| -> Result<i64> {
                    match v {
                        Const::Int(i) => Ok(i),
                        other => Err(DatalogError::IncomparableTerms {
                            left: other.to_string(),
                            right: "integer".to_owned(),
                        }),
                    }
                };
                let l = as_int(self.resolve(*lhs, scratch))?;
                let r = as_int(self.resolve(*rhs, scratch))?;
                let value = Const::Int(op.eval(l, r)?);
                match target {
                    ArithTarget::CheckConst(c) => {
                        if *c != value {
                            return Ok(());
                        }
                    }
                    ArithTarget::CheckSlot(s) => {
                        if scratch.bindings[*s as usize] != value {
                            return Ok(());
                        }
                    }
                    ArithTarget::Bind(s) => scratch.bindings[*s as usize] = value,
                }
                self.exec_tuple(step + 1, db, delta, scratch, out, guard)
            }
        }
    }

    fn resolve(&self, v: ValSrc, scratch: &Scratch) -> Const {
        match v {
            ValSrc::Const(c) => c,
            ValSrc::Slot(s) => scratch.bindings[s as usize],
        }
    }
}

/// Delta-variant positions of a rule within `stratum_preds`: each body
/// position holding a positive literal over a same-stratum predicate.
pub(crate) fn delta_positions(rule: &Clause, stratum_preds: &HashSet<SymId>) -> Vec<usize> {
    rule.body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            Literal::Pos(a) if stratum_preds.contains(&a.predicate) => Some(i),
            _ => None,
        })
        .collect()
}

/// Compile-and-run convenience used by ad hoc queries: evaluates `rule`
/// against `db` with a freshly compiled plan.
/// Evaluate one rule against a fixpointed database, consulting `guard`
/// during the join: ad hoc queries issued by long-lived sessions run
/// under the session's deadline / budget / cancellation (pass
/// [`EvalGuard::unlimited`] for unguarded evaluation).
pub(crate) fn eval_rule_once_guarded(
    rule: &Clause,
    db: &Database,
    guard: &EvalGuard,
) -> Result<Vec<Fact>> {
    let plan = RulePlan::compile(rule, None, db)?;
    let mut scratch = plan.new_scratch();
    let mut out = FactBuf::default();
    plan.eval(db, None, &mut scratch, &mut out, guard)?;
    Ok(out.rows().map(Fact::from).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn plan_for(src: &str, head: &str, delta_pos: Option<usize>) -> RulePlan {
        let p = parse_program(src).unwrap();
        let db = Database::new();
        let rule = p
            .clauses()
            .iter()
            .rfind(|c| !c.is_fact() && c.head.predicate.as_str() == head)
            .expect("rule present");
        RulePlan::compile(rule, delta_pos, &db).unwrap()
    }

    #[test]
    fn delta_literal_is_scheduled_first() {
        let src = "edge(a, b). path(X, Y) :- edge(X, Y).\
                   path(X, Z) :- edge(X, Y), path(Y, Z).";
        // Delta on body position 1 (path): it should be first in the order.
        let plan = plan_for(src, "path", Some(1));
        assert!(
            plan.order_desc.contains(":- [1,0]"),
            "delta first: {}",
            plan.order_desc
        );
        assert_eq!(plan.delta_pred.unwrap().as_str(), "path");
    }

    #[test]
    fn builtins_schedule_when_bound() {
        // The comparison references Y, bound only by the second literal:
        // the planner must order it after s(Y) instead of failing.
        let src = "q(a). s(1). p(X) :- q(X), Y < 2, s(Y).";
        let plan = plan_for(src, "p", None);
        let order: &str = plan
            .order_desc
            .split('[')
            .nth(1)
            .unwrap()
            .trim_end_matches(']');
        let pos_of = |i: char| order.chars().position(|c| c == i).unwrap();
        assert!(pos_of('2') < pos_of('1'), "cmp after s(Y): {order}");
    }

    #[test]
    fn existential_set_fixed_by_textual_order() {
        // Y is existential in `not r(X, Y)` (no earlier positive binds
        // it), even though p(X, Y) would bind Y if scheduled first.
        let src = "s(a). p(a, b). r(a, c). q(X) :- s(X), not r(X, Y), p(X, Y).";
        let p = parse_program(src).unwrap();
        let rule = p.clauses().iter().find(|c| !c.is_fact()).unwrap();
        let mut db = Database::new();
        db.insert("s", vec![Const::sym("a")]);
        db.insert("p", vec![Const::sym("a"), Const::sym("b")]);
        db.insert("r", vec![Const::sym("a"), Const::sym("c")]);
        let derived = eval_rule_once_guarded(rule, &db, &EvalGuard::unlimited()).unwrap();
        // ∃Y r(a, Y) holds, so the negation fails and nothing is derived —
        // even though the (a, b) binding from p would not match r.
        assert!(derived.is_empty(), "derived: {derived:?}");
    }

    #[test]
    fn unready_builtin_reports_unsafe_variable() {
        use crate::clause::Clause;
        use crate::{Atom, CmpOp};
        // Hand-built rule (the parser/safety layer would reject it):
        // p(X) :- q(X), Z != a — Z is never bound.
        let rule = Clause::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![
                Literal::Pos(Atom::new("q", vec![Term::var("X")])),
                Literal::Cmp {
                    op: CmpOp::Ne,
                    lhs: Term::var("Z"),
                    rhs: Term::sym("a"),
                },
            ],
        );
        let db = Database::new();
        let err = RulePlan::compile(&rule, None, &db).unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeVariable { variable, .. } if variable == "Z"));
    }

    /// Both executors over a mixed rule set (joins, negation, arithmetic,
    /// comparisons, repeated variables) must derive identical sets.
    #[test]
    fn batched_matches_reference_executor() {
        let src = "e(a, b). e(b, c). e(c, a). e(a, a).\
                   n(1). n(2). n(3).\
                   loop(X) :- e(X, X).\
                   pair(X, Y) :- e(X, Y), not loop(X).\
                   sum(X, S) :- n(X), S = X + 10, X < 3.";
        let p = parse_program(src).unwrap();
        let mut db = Database::new();
        for c in p.clauses().iter().filter(|c| c.is_fact()) {
            let fact: Fact = c
                .head
                .terms
                .iter()
                .map(|t| *t.as_const().unwrap())
                .collect();
            db.insert(c.head.predicate.as_str(), fact);
        }
        let guard = EvalGuard::unlimited();
        for rule in p.clauses().iter().filter(|c| !c.is_fact()) {
            let plan = RulePlan::compile(rule, None, &db).unwrap();
            let (mut batched, mut tuple) = (FactBuf::default(), FactBuf::default());
            plan.eval(&db, None, &mut plan.new_scratch(), &mut batched, &guard)
                .unwrap();
            plan.eval_reference(&db, None, &mut plan.new_scratch(), &mut tuple, &guard)
                .unwrap();
            let mut batched: Vec<Fact> = batched.rows().map(Fact::from).collect();
            let mut tuple: Vec<Fact> = tuple.rows().map(Fact::from).collect();
            batched.sort();
            tuple.sort();
            assert_eq!(batched, tuple, "rule {rule}");
        }
    }
}
