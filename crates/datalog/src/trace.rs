//! Structured evaluation tracing.
//!
//! The engine emits coarse-grained [`TraceEvent`]s — stratum boundaries,
//! iteration summaries, rule applications, guard trips — to a
//! [`TraceSink`]. The default engine carries no sink and pays nothing;
//! [`RecordingTrace`] captures rendered events for tests and the CLI's
//! `--stats` output. Granularity is one event per rule *application*
//! (not per tuple), so tracing stays cheap enough to leave on in
//! production runs.

use std::sync::Mutex;

use crate::DatalogError;

/// One evaluation event. Borrowed fields keep emission allocation-free
/// for sinks that filter or count; recording sinks render to owned
/// strings.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceEvent<'a> {
    /// A stratum's fixpoint loop is starting.
    StratumStart {
        /// Zero-based stratum index.
        stratum: usize,
        /// Predicates defined in this stratum.
        predicates: &'a [String],
    },
    /// One fixpoint iteration finished.
    IterationEnd {
        /// Zero-based stratum index.
        stratum: usize,
        /// One-based iteration number within the stratum.
        iteration: usize,
        /// Facts newly added by this iteration.
        facts_added: usize,
    },
    /// One rule variant was applied.
    RuleApplied {
        /// The variant's join-order description.
        rule: &'a str,
        /// Head tuples produced, including duplicates.
        derived: usize,
        /// Tuples genuinely new to the database.
        added: usize,
        /// Wall time of the application, in nanoseconds.
        wall_ns: u64,
    },
    /// A stratum reached its fixpoint.
    StratumEnd {
        /// Zero-based stratum index.
        stratum: usize,
        /// Iterations the stratum ran.
        iterations: usize,
        /// Facts the stratum added in total.
        facts_added: usize,
        /// Wall time of the stratum, in nanoseconds.
        wall_ns: u64,
    },
    /// Evaluation stopped on a guard error (deadline, budget, or
    /// cancellation).
    GuardTrip {
        /// The typed error the run will return.
        error: &'a DatalogError,
    },
}

/// A consumer of evaluation events.
///
/// Implementations must be `Send + Sync`: the parallel semi-naive path
/// may emit from the coordinating thread while workers run. The default
/// method does nothing, so sinks override only what they need.
pub trait TraceSink: Send + Sync {
    /// Receive one event.
    fn event(&self, event: &TraceEvent<'_>);
}

/// The do-nothing sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTrace;

impl TraceSink for NoopTrace {
    fn event(&self, _event: &TraceEvent<'_>) {}
}

/// A sink that records every event as a rendered line, for tests and
/// post-run inspection.
#[derive(Debug, Default)]
pub struct RecordingTrace {
    events: Mutex<Vec<String>>,
}

impl RecordingTrace {
    /// Create an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        RecordingTrace::default()
    }

    /// A copy of the recorded event lines, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl TraceSink for RecordingTrace {
    fn event(&self, event: &TraceEvent<'_>) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(format!("{event:?}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_trace_captures_events() {
        let t = RecordingTrace::new();
        t.event(&TraceEvent::GuardTrip {
            error: &DatalogError::Cancelled,
        });
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("GuardTrip"));
    }

    #[test]
    fn noop_trace_accepts_events() {
        NoopTrace.event(&TraceEvent::IterationEnd {
            stratum: 0,
            iteration: 1,
            facts_added: 0,
        });
    }
}
