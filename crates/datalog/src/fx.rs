//! A fast, non-cryptographic hasher for the engine's in-memory indexes.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! HashDoS-resistant, which matters for maps keyed by untrusted input but
//! costs several times more per lookup than necessary for the engine's
//! internal maps (column indexes, dedup tables, delta maps). Those maps
//! are keyed by small `Copy` values (`Const`, `SymId`) or by tuple hashes
//! the engine computes itself, so we use a multiply-rotate hash in the
//! style of FxHash instead. Determinism of results never depends on map
//! iteration order — every externally visible ordering is sorted.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-rotate hasher; not DoS-resistant, engine-internal use only.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v.into());
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v.into());
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinct_values_usually_differ() {
        let hashes: std::collections::HashSet<u64> = (0..1000u64).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn str_prefixes_differ() {
        // The tail-padding mix must distinguish strings that share a
        // prefix and differ only in length.
        assert_ne!(hash_of(&"abc"), hash_of(&"abc\0"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
