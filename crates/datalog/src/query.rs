//! Query answering against an evaluated database.

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::Literal;
use crate::clause::Clause;
use crate::guard::{CancelToken, EvalGuard};
use crate::plan::eval_rule_once_guarded;
use crate::storage::Database;
use crate::term::{Const, Term};
use crate::{Atom, Result};

/// Guard configuration for ad hoc query evaluation over an
/// already-materialized database ([`run_query_guarded`]). The default is
/// fully unguarded, matching [`run_query`].
#[derive(Clone, Debug, Default)]
pub struct QueryGuards {
    /// Wall-clock deadline for the join.
    pub deadline: Option<std::time::Duration>,
    /// Budget on emitted answer tuples (`0` = unlimited).
    pub fact_limit: usize,
    /// Cooperative cancellation, checked at guard-check granularity.
    pub cancel: Option<CancelToken>,
}

/// One answer to a query: variable name → constant, sorted by name.
pub type Bindings = BTreeMap<String, Const>;

/// The full answer set of a query, deduplicated and deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The variables projected (query variables in first-occurrence order).
    pub variables: Vec<String>,
    /// The distinct answers, sorted.
    pub answers: Vec<Bindings>,
}

impl QueryAnswer {
    /// Whether the query succeeded at least once.
    pub fn is_success(&self) -> bool {
        !self.answers.is_empty()
    }

    /// Number of distinct answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Project a single variable's values across all answers, sorted.
    pub fn column(&self, variable: &str) -> Vec<Const> {
        let mut out: Vec<Const> = self
            .answers
            .iter()
            .filter_map(|b| b.get(variable).cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.variables.is_empty() {
            return write!(f, "{}", if self.is_success() { "yes" } else { "no" });
        }
        writeln!(f, "{}", self.variables.join("\t"))?;
        for a in &self.answers {
            let row: Vec<String> = self
                .variables
                .iter()
                .map(|v| a.get(v).map_or("_".to_owned(), |c| c.to_string()))
                .collect();
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// Evaluate a conjunctive query (with negation and comparisons) against a
/// database that has already been computed to fixpoint.
///
/// The body is treated as the body of an anonymous rule whose head
/// collects every variable occurring in a positive literal; answers are
/// the distinct head instantiations restricted to the query's variables.
pub fn run_query(db: &Database, body: &[Literal]) -> Result<QueryAnswer> {
    run_query_guarded(db, body, &QueryGuards::default())
}

/// [`run_query`] under a session's guards: the conjunctive join consults
/// the deadline, answer budget, and cancellation token of `guards`, so a
/// runaway cross-product query trips instead of monopolizing a reader
/// session. Guard trips surface as the usual typed errors
/// ([`crate::DatalogError::DeadlineExceeded`] etc.).
pub fn run_query_guarded(
    db: &Database,
    body: &[Literal],
    guards: &QueryGuards,
) -> Result<QueryAnswer> {
    // Query variables: first-occurrence order across all literals.
    let mut variables: Vec<String> = Vec::new();
    for l in body {
        for v in l.variables() {
            if !variables.iter().any(|x| x == v) {
                variables.push(v.to_owned());
            }
        }
    }
    // Head carries only the *positively bound* variables; variables that
    // appear only under negation are existential and not projected.
    let positive: Vec<String> = {
        let mut out = Vec::new();
        for l in body {
            if let Literal::Pos(a) = l {
                for v in a.variables() {
                    if !out.iter().any(|x: &String| x == v) {
                        out.push(v.to_owned());
                    }
                }
            }
        }
        out
    };
    let head = Atom::new(
        "__query__",
        positive.iter().map(|v| Term::var(v.clone())).collect(),
    );
    let rule = Clause::new(head, body.to_vec());
    rule.check_safety()?;
    let guard = if guards.deadline.is_none() && guards.fact_limit == 0 && guards.cancel.is_none() {
        EvalGuard::unlimited()
    } else {
        let budget = if guards.fact_limit == 0 {
            usize::MAX
        } else {
            guards.fact_limit
        };
        EvalGuard::new(guards.deadline, budget, guards.cancel.clone())
    };
    let facts = eval_rule_once_guarded(&rule, db, &guard)?;
    let mut answers: Vec<Bindings> = facts
        .into_iter()
        .map(|f| positive.iter().cloned().zip(f).collect::<Bindings>())
        .collect();
    answers.sort();
    answers.dedup();
    Ok(QueryAnswer {
        variables: positive,
        answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use crate::Engine;

    fn db(src: &str) -> Database {
        let p = parse_program(src).unwrap();
        Engine::new(&p).unwrap().run().unwrap()
    }

    #[test]
    fn ground_query_yes_no() {
        let d = db("p(a).");
        let yes = run_query(&d, &parse_query("p(a)").unwrap()).unwrap();
        assert!(yes.is_success());
        assert_eq!(yes.to_string(), "yes");
        let no = run_query(&d, &parse_query("p(b)").unwrap()).unwrap();
        assert!(!no.is_success());
        assert_eq!(no.to_string(), "no");
    }

    #[test]
    fn variable_query_collects_answers() {
        let d = db("edge(a, b). edge(a, c). edge(b, c).");
        let ans = run_query(&d, &parse_query("edge(a, X)").unwrap()).unwrap();
        assert_eq!(ans.len(), 2);
        assert_eq!(ans.column("X"), vec![Const::sym("b"), Const::sym("c")]);
    }

    #[test]
    fn conjunctive_query_with_negation() {
        let d = db("p(a). p(b). q(a).");
        let ans = run_query(&d, &parse_query("p(X), not q(X)").unwrap()).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.answers[0]["X"], Const::sym("b"));
    }

    #[test]
    fn negation_only_variables_are_existential() {
        let d = db("p(a). p(b). r(a, k).");
        let ans = run_query(&d, &parse_query("p(X), not r(X, Y)").unwrap()).unwrap();
        assert_eq!(ans.variables, vec!["X"]);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.answers[0]["X"], Const::sym("b"));
    }

    #[test]
    fn answers_deduplicated_and_sorted() {
        let d = db("e(a, b). e(a, c). f(b). f(c).");
        let ans = run_query(&d, &parse_query("e(a, Y), f(Y)").unwrap()).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.answers[0]["Y"] < ans.answers[1]["Y"]);
    }

    #[test]
    fn display_renders_table() {
        let d = db("p(a, 1).");
        let ans = run_query(&d, &parse_query("p(X, N)").unwrap()).unwrap();
        let shown = ans.to_string();
        assert!(shown.contains("X\tN"));
        assert!(shown.contains("a\t1"));
    }

    #[test]
    fn guarded_query_trips_cancellation_and_budget() {
        let d = db("p(a). p(b). p(c). q(a). q(b). q(c).");
        let body = parse_query("p(X), q(Y)").unwrap();
        // Pre-cancelled token: the join aborts with Cancelled.
        let token = CancelToken::new();
        token.cancel();
        let guards = QueryGuards {
            cancel: Some(token),
            ..QueryGuards::default()
        };
        assert!(matches!(
            run_query_guarded(&d, &body, &guards),
            Err(crate::DatalogError::Cancelled)
        ));
        // A one-tuple budget trips on the 9-answer cross product.
        let guards = QueryGuards {
            fact_limit: 1,
            ..QueryGuards::default()
        };
        assert!(matches!(
            run_query_guarded(&d, &body, &guards),
            Err(crate::DatalogError::BudgetExceeded { .. })
        ));
        // Default guards answer exactly like the unguarded entry point.
        let unguarded = run_query(&d, &body).unwrap();
        let guarded = run_query_guarded(&d, &body, &QueryGuards::default()).unwrap();
        assert_eq!(unguarded, guarded);
    }

    #[test]
    fn unsafe_query_rejected() {
        let d = db("p(a).");
        // Comparison over an unbound variable.
        let err = run_query(&d, &parse_query("p(X), Y != a").unwrap());
        assert!(err.is_err());
    }
}
