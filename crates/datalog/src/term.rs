//! Terms: constants and variables, backed by a global symbol table.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// The process-wide symbol interner.
///
/// Symbol text is leaked into `'static` storage on first interning, so a
/// [`SymId`] can hand out `&'static str` without holding any lock beyond
/// the lookup. The table only ever grows; symbols are never freed. For a
/// Datalog engine this is the right trade: the set of distinct symbols is
/// bounded by the input program and EDB, while facts — produced in bulk
/// during bottom-up evaluation — copy a `u32` instead of bumping an
/// `Arc` refcount.
struct SymbolTable {
    by_text: HashMap<&'static str, u32>,
    text: Vec<&'static str>,
}

fn table() -> &'static RwLock<SymbolTable> {
    static TABLE: OnceLock<RwLock<SymbolTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(SymbolTable {
            by_text: HashMap::new(),
            text: Vec::new(),
        })
    })
}

/// An interned symbol: a `u32` handle into the global `SymbolTable`.
///
/// Equality and hashing are O(1) on the id (interning guarantees
/// text-equality iff id-equality); ordering resolves to the symbol text
/// so sorted output is identical to ordering by the strings themselves.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymId(u32);

impl SymId {
    /// Intern `text`, returning its id (allocating on first sight).
    pub fn intern(text: &str) -> SymId {
        {
            let t = table().read().expect("symbol table poisoned");
            if let Some(&id) = t.by_text.get(text) {
                return SymId(id);
            }
        }
        let mut t = table().write().expect("symbol table poisoned");
        if let Some(&id) = t.by_text.get(text) {
            return SymId(id);
        }
        let id = u32::try_from(t.text.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        t.text.push(leaked);
        t.by_text.insert(leaked, id);
        SymId(id)
    }

    /// The symbol text.
    pub fn as_str(self) -> &'static str {
        let t = table().read().expect("symbol table poisoned");
        t.text[self.0 as usize]
    }

    /// The raw table index (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AsRef<str> for SymId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::ops::Deref for SymId {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialOrd for SymId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SymId {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for SymId {
    fn from(s: &str) -> Self {
        SymId::intern(s)
    }
}

/// A ground constant: an interned symbol or a 64-bit integer.
///
/// `Const` is a small `Copy` value (12 bytes), so facts — which are
/// produced in bulk during bottom-up evaluation — copy without touching
/// any refcount or heap allocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Const {
    /// A symbolic constant, e.g. `mars` or `"Outer Space"`.
    Sym(SymId),
    /// An integer constant.
    Int(i64),
}

impl Const {
    /// Construct a symbolic constant.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Const::Sym(SymId::intern(s.as_ref()))
    }

    /// Construct an integer constant.
    pub fn int(i: i64) -> Self {
        Const::Int(i)
    }

    /// The symbol text, if this is a symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Const::Sym(s) => Some(s.as_str()),
            Const::Int(_) => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Sym(_) => None,
            Const::Int(i) => Some(*i),
        }
    }

    /// Total comparison *within* a kind; `None` across kinds.
    ///
    /// Comparison built-ins other than `=`/`!=` refuse to order a symbol
    /// against an integer rather than inventing an arbitrary order.
    pub fn try_cmp(&self, other: &Const) -> Option<Ordering> {
        match (self, other) {
            (Const::Sym(a), Const::Sym(b)) => Some(a.cmp(b)),
            (Const::Int(a), Const::Int(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

// Manual ordering to preserve the original derived order (`Sym` sorts
// before `Int`, symbols by text, integers numerically) now that symbol
// ids are not the text itself.
impl PartialOrd for Const {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Const {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Const::Sym(a), Const::Sym(b)) => a.cmp(b),
            (Const::Int(a), Const::Int(b)) => a.cmp(b),
            (Const::Sym(_), Const::Int(_)) => Ordering::Less,
            (Const::Int(_), Const::Sym(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(id) => {
                let s = id.as_str();
                // Quote when the symbol does not lex as a bare identifier.
                let bare = !s.is_empty()
                    && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if bare {
                    f.write_str(s)
                } else {
                    write!(f, "{s:?}")
                }
            }
            Const::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Const {
    fn from(i: i64) -> Self {
        Const::Int(i)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Self {
        Const::sym(s)
    }
}

impl From<String> for Const {
    fn from(s: String) -> Self {
        Const::sym(s)
    }
}

/// A term: either a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logic variable, e.g. `X`. By convention variables start with an
    /// uppercase letter or `_` in the textual syntax.
    Var(Arc<str>),
    /// A ground constant.
    Const(Const),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// Construct a symbolic-constant term.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Term::Const(Const::sym(s))
    }

    /// Construct an integer-constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Const::Int(i))
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if ground.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => fmt::Display::fmt(c, f),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_accessors() {
        assert_eq!(Const::sym("mars").as_sym(), Some("mars"));
        assert_eq!(Const::int(42).as_int(), Some(42));
        assert_eq!(Const::sym("mars").as_int(), None);
        assert_eq!(Const::int(42).as_sym(), None);
    }

    #[test]
    fn try_cmp_within_kinds_only() {
        assert_eq!(Const::int(1).try_cmp(&Const::int(2)), Some(Ordering::Less));
        assert_eq!(
            Const::sym("a").try_cmp(&Const::sym("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Const::int(1).try_cmp(&Const::sym("a")), None);
    }

    #[test]
    fn display_quotes_non_identifiers() {
        assert_eq!(Const::sym("mars").to_string(), "mars");
        assert_eq!(Const::sym("Outer Space").to_string(), "\"Outer Space\"");
        assert_eq!(Const::sym("").to_string(), "\"\"");
        assert_eq!(Const::sym("X").to_string(), "\"X\"");
        assert_eq!(Const::int(-3).to_string(), "-3");
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some("X"));
        assert_eq!(v.as_const(), None);
        let c = Term::sym("a");
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(&Const::sym("a")));
    }

    #[test]
    fn interning_dedups_and_orders_by_text() {
        let a1 = SymId::intern("alpha");
        let a2 = SymId::intern("alpha");
        assert_eq!(a1, a2);
        assert_eq!(a1.index(), a2.index());
        // Intern out of lexical order: ordering still follows the text.
        let z = SymId::intern("zzz_order_test");
        let m = SymId::intern("mmm_order_test");
        assert!(m < z);
        assert!(SymId::intern("mmm_order_test") < SymId::intern("zzz_order_test"));
    }

    #[test]
    fn const_is_small_and_copy() {
        // The whole point of interning: facts copy in O(1) with no heap
        // or refcount traffic.
        assert!(std::mem::size_of::<Const>() <= 16);
        let a = Const::sym("copied");
        let b = a; // Copy, not move
        assert_eq!(a, b);
    }
}
