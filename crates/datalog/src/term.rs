//! Terms: constants and variables.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A ground constant: an interned symbol or a 64-bit integer.
///
/// Symbols are stored as `Arc<str>` so that facts — which are produced in
/// bulk during bottom-up evaluation — clone in O(1) without a string copy.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// A symbolic constant, e.g. `mars` or `"Outer Space"`.
    Sym(Arc<str>),
    /// An integer constant.
    Int(i64),
}

impl Const {
    /// Construct a symbolic constant.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Const::Sym(Arc::from(s.as_ref()))
    }

    /// Construct an integer constant.
    pub fn int(i: i64) -> Self {
        Const::Int(i)
    }

    /// The symbol text, if this is a symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Const::Sym(s) => Some(s),
            Const::Int(_) => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Sym(_) => None,
            Const::Int(i) => Some(*i),
        }
    }

    /// Total comparison *within* a kind; `None` across kinds.
    ///
    /// Comparison built-ins other than `=`/`!=` refuse to order a symbol
    /// against an integer rather than inventing an arbitrary order.
    pub fn try_cmp(&self, other: &Const) -> Option<Ordering> {
        match (self, other) {
            (Const::Sym(a), Const::Sym(b)) => Some(a.cmp(b)),
            (Const::Int(a), Const::Int(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => {
                // Quote when the symbol does not lex as a bare identifier.
                let bare = !s.is_empty()
                    && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if bare {
                    f.write_str(s)
                } else {
                    write!(f, "{s:?}")
                }
            }
            Const::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Const {
    fn from(i: i64) -> Self {
        Const::Int(i)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Self {
        Const::sym(s)
    }
}

impl From<String> for Const {
    fn from(s: String) -> Self {
        Const::Sym(Arc::from(s.as_str()))
    }
}

/// A term: either a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logic variable, e.g. `X`. By convention variables start with an
    /// uppercase letter or `_` in the textual syntax.
    Var(Arc<str>),
    /// A ground constant.
    Const(Const),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// Construct a symbolic-constant term.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Term::Const(Const::sym(s))
    }

    /// Construct an integer-constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Const::Int(i))
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if ground.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(c) => fmt::Display::fmt(c, f),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_accessors() {
        assert_eq!(Const::sym("mars").as_sym(), Some("mars"));
        assert_eq!(Const::int(42).as_int(), Some(42));
        assert_eq!(Const::sym("mars").as_int(), None);
        assert_eq!(Const::int(42).as_sym(), None);
    }

    #[test]
    fn try_cmp_within_kinds_only() {
        assert_eq!(Const::int(1).try_cmp(&Const::int(2)), Some(Ordering::Less));
        assert_eq!(
            Const::sym("a").try_cmp(&Const::sym("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Const::int(1).try_cmp(&Const::sym("a")), None);
    }

    #[test]
    fn display_quotes_non_identifiers() {
        assert_eq!(Const::sym("mars").to_string(), "mars");
        assert_eq!(Const::sym("Outer Space").to_string(), "\"Outer Space\"");
        assert_eq!(Const::sym("").to_string(), "\"\"");
        assert_eq!(Const::sym("X").to_string(), "\"X\"");
        assert_eq!(Const::int(-3).to_string(), "-3");
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some("X"));
        assert_eq!(v.as_const(), None);
        let c = Term::sym("a");
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(&Const::sym("a")));
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Const::sym("shared");
        let b = a.clone();
        match (&a, &b) {
            (Const::Sym(x), Const::Sym(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
    }
}
