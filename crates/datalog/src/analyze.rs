//! Static analysis over Datalog programs: a lint pass that finds
//! authoring mistakes *before* evaluation.
//!
//! The MultiLog reduction (§6 of the paper) compiles belief programs into
//! plain Datalog; mistakes in either layer surface at evaluation time as
//! guard trips or — worse — silently empty relations. This pass checks a
//! program statically and reports findings with stable lint codes:
//!
//! | code   | name                 | severity | meaning |
//! |--------|----------------------|----------|---------|
//! | ML0001 | `unsafe-variable`    | error    | head/comparison variable unbound by a positive body literal |
//! | ML0002 | `arity-mismatch`     | error    | predicate used with two different arities |
//! | ML0003 | `non-stratifiable`   | error    | negative dependency cycle (full witness reported) |
//! | ML0004 | `unused-predicate`   | warning  | predicate outside the dependency cone of the query seeds |
//! | ML0005 | `unreachable-rule`   | warning  | a body predicate can never hold (no facts or firing rules derive it) |
//! | ML0006 | `singleton-variable` | warning  | variable occurs exactly once in a clause (likely a typo) |
//! | ML0007 | `unbound-demand`     | warning  | query goal binds no arguments, so demand-driven (magic-sets) evaluation degenerates to full cone evaluation |
//! | ML0008 | `unknown-algo` / `algo-call-arity` / `aggregation-through-recursion` | error | `@algo(...)` call over an unregistered operator or with the wrong arity; aggregate clause recursing through its own head |
//!
//! ML0001/ML0002 are normally raised eagerly by [`Program::push`]; the
//! [`check_clauses`] entry point re-checks a raw clause list *collecting*
//! every finding instead of failing fast, which is what an IDE-style lint
//! front-end wants. The higher-level `multilog lint` command layers the
//! MultiLog-specific lints (ML01xx) from `multilog-core` on top of this
//! pass.

use std::collections::HashMap;
use std::fmt;

use crate::atom::Literal;
use crate::clause::{Clause, Span};
use crate::program::Program;
use crate::DatalogError;

/// Lint severity: errors would make evaluation fail (or be meaningless);
/// warnings flag suspicious but evaluable constructs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but evaluable.
    Warning,
    /// Evaluation would reject the program or the construct is vacuous.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding of the analysis pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// Stable lint code (`ML0001` …).
    pub code: &'static str,
    /// Human-readable lint name (`unsafe-variable` …).
    pub name: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Source span of the offending clause, when known.
    pub span: Span,
    /// The finding, rendered for humans.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if self.span.is_known() {
            write!(f, " (at {})", self.span)?;
        }
        Ok(())
    }
}

fn lint(
    code: &'static str,
    name: &'static str,
    severity: Severity,
    span: Span,
    message: String,
) -> Lint {
    Lint {
        code,
        name,
        severity,
        span,
        message,
    }
}

/// Layer-independent lint kernels, shared between this Datalog pass
/// (ML0005 unreachable-rule, ML0006 singleton-variable) and the MultiLog
/// pass in `multilog-core` (ML0111 unused-predicate, ML0112
/// singleton-variable), so the two layers cannot drift: both reduce
/// their clause structure to predicate indices / variable occurrence
/// lists and call the same fixpoints.
pub mod shared {
    /// One clause abstracted to what the possibly-nonempty fixpoint
    /// needs: the head predicate index and the positive body predicate
    /// indices that must all be (possibly) nonempty for the clause to
    /// fire. Negated literals and built-ins never block firing and are
    /// simply omitted.
    #[derive(Clone, Debug)]
    pub struct AbstractClause {
        /// The head predicate's index.
        pub head: usize,
        /// Indices of the positive body predicates.
        pub positive_body: Vec<usize>,
    }

    /// The possibly-nonempty fixpoint over `predicates` many predicates:
    /// a predicate is possibly nonempty when some clause for it has an
    /// all-possibly-nonempty positive body (facts fire vacuously). A
    /// sound over-approximation of "has at least one derivable tuple".
    #[must_use]
    pub fn possibly_nonempty(predicates: usize, clauses: &[AbstractClause]) -> Vec<bool> {
        possibly_nonempty_from(vec![false; predicates], clauses)
    }

    /// [`possibly_nonempty`], but starting from predicates already known
    /// nonempty — callers with bulk fact data seed those heads directly
    /// and pass only genuine rules, keeping the fixpoint proportional to
    /// the rule count rather than the data volume.
    #[must_use]
    pub fn possibly_nonempty_from(
        mut nonempty: Vec<bool>,
        clauses: &[AbstractClause],
    ) -> Vec<bool> {
        let predicates = nonempty.len();
        loop {
            let mut changed = false;
            for c in clauses {
                if c.head < predicates
                    && !nonempty[c.head]
                    && c.positive_body
                        .iter()
                        .all(|&p| p < predicates && nonempty[p])
                {
                    nonempty[c.head] = true;
                    changed = true;
                }
            }
            if !changed {
                return nonempty;
            }
        }
    }

    /// Transitive reachability over `nodes` many nodes from `seeds`
    /// along `edges` (directed `from → to` index pairs) — the kernel of
    /// the unused-predicate lints, which walk the dependency graph
    /// *backwards* from the query seeds by passing reversed edges.
    #[must_use]
    pub fn reachable(
        nodes: usize,
        edges: &[(usize, usize)],
        seeds: impl IntoIterator<Item = usize>,
    ) -> Vec<bool> {
        let mut seen = vec![false; nodes];
        let mut stack: Vec<usize> = seeds.into_iter().filter(|&s| s < nodes).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(v) = stack.pop() {
            for &(from, to) in edges {
                if from == v && to < nodes && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// The variables occurring exactly once in `occurrences` (one entry
    /// per textual occurrence), excluding `_`-prefixed opt-outs, sorted.
    /// Callers decide what one "source item" is — a Datalog clause, or a
    /// whole MultiLog molecule spanning several desugared clauses.
    #[must_use]
    pub fn singleton_variables<'a>(occurrences: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for v in occurrences {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut singles: Vec<&str> = counts
            .into_iter()
            .filter(|&(v, n)| n == 1 && !v.starts_with('_'))
            .map(|(v, _)| v)
            .collect();
        singles.sort_unstable();
        singles
    }
}

/// Re-check a raw clause list for safety (ML0001) and arity consistency
/// (ML0002), collecting every violation instead of failing on the first —
/// the lenient twin of [`Program::from_clauses`].
pub fn check_clauses(clauses: &[Clause]) -> Vec<Lint> {
    let mut out = Vec::new();
    let mut arities: HashMap<String, (usize, Span)> = HashMap::new();
    for c in clauses {
        if let Err(DatalogError::UnsafeVariable { variable, clause }) = c.check_safety() {
            out.push(lint(
                "ML0001",
                "unsafe-variable",
                Severity::Error,
                c.span,
                format!("unsafe variable `{variable}` in `{clause}`"),
            ));
        }
        let mut uses: Vec<(String, usize)> = vec![(c.head.predicate.to_string(), c.head.arity())];
        for l in &c.body {
            if let Some(a) = l.atom() {
                uses.push((a.predicate.to_string(), a.arity()));
            }
        }
        for (pred, arity) in uses {
            match arities.get(&pred) {
                Some(&(a, first)) if a != arity => {
                    out.push(lint(
                        "ML0002",
                        "arity-mismatch",
                        Severity::Error,
                        c.span,
                        format!(
                            "predicate `{pred}` used with arity {arity}, but arity {a} at {first}"
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    arities.insert(pred, (arity, c.span));
                }
            }
        }
    }
    out
}

/// Analyze a validated program: stratifiability with a full cycle witness
/// (ML0003), unreachable rules (ML0005), singleton variables (ML0006),
/// and algorithm-operator / aggregation misuse (ML0008). Use
/// [`analyze_for_query`] to additionally flag predicates outside a
/// query's dependency cone (ML0004).
pub fn analyze(program: &Program) -> Vec<Lint> {
    let mut out = Vec::new();

    // ML0003 — negative dependency cycle, full witness.
    let graph = program.dependency_graph();
    if let Some(cycle) = graph.negative_cycle() {
        let mut loop_text = cycle.join(" -> ");
        if let Some(first) = cycle.first() {
            loop_text.push_str(" -> ");
            loop_text.push_str(first);
        }
        out.push(lint(
            "ML0003",
            "non-stratifiable",
            Severity::Error,
            Span::unknown(),
            format!("negative dependency cycle {loop_text}"),
        ));
    }

    // ML0005 — rules over predicates that can never hold, via the shared
    // possibly-nonempty kernel: a predicate is *possibly nonempty* when
    // it has a fact, or a rule whose positive body literals are all
    // possibly nonempty (negated literals never block firing).
    let index: HashMap<&str, usize> = graph
        .predicates()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();
    let abstracted: Vec<shared::AbstractClause> = program
        .clauses()
        .iter()
        .filter_map(|c| {
            Some(shared::AbstractClause {
                head: *index.get(c.head.predicate.as_str())?,
                positive_body: c
                    .body
                    .iter()
                    .filter_map(|l| match l {
                        Literal::Pos(a) => index.get(a.predicate.as_str()).copied(),
                        _ => None,
                    })
                    .collect(),
            })
        })
        .collect();
    let nonempty = shared::possibly_nonempty(index.len(), &abstracted);
    let is_nonempty = |pred: &str| -> bool { index.get(pred).is_some_and(|&i| nonempty[i]) };
    for c in program.clauses() {
        let empty_dep = c.body.iter().find_map(|l| match l {
            Literal::Pos(a) if !is_nonempty(a.predicate.as_ref()) => Some(a.predicate.to_string()),
            _ => None,
        });
        if let Some(p) = empty_dep {
            out.push(lint(
                "ML0005",
                "unreachable-rule",
                Severity::Warning,
                c.span,
                format!("rule `{c}` can never fire: no fact or reachable rule derives `{p}`"),
            ));
        }
    }

    // ML0006 — singleton variables (`_`-prefixed names opt out), via the
    // shared occurrence-counting kernel.
    for c in program.clauses() {
        let occurrences: Vec<&str> = c
            .head
            .variables()
            .chain(c.body.iter().flat_map(Literal::variables))
            .collect();
        for v in shared::singleton_variables(occurrences) {
            out.push(lint(
                "ML0006",
                "singleton-variable",
                Severity::Warning,
                c.span,
                format!("variable `{v}` occurs only once in `{c}` — typo or use `_{v}`"),
            ));
        }
    }

    // ML0008 — algorithm-operator and aggregation misuse. An unknown or
    // mis-called `@algo(...)` operator fails at materialization time; an
    // aggregate clause reading a predicate mutually recursive with its
    // own head has no stratified semantics (the fold needs its input
    // complete before it runs, but the input needs the fold's output).
    let registry = crate::algo::registry();
    for c in program.clauses() {
        for l in &c.body {
            let Some(a) = l.atom() else { continue };
            let Some((name, input)) = crate::algo::parse_call(a.predicate.as_str()) else {
                continue;
            };
            match registry.get(name) {
                None => out.push(lint(
                    "ML0008",
                    "unknown-algo",
                    Severity::Error,
                    c.span,
                    format!(
                        "unknown algorithm operator `@{name}` (known: {})",
                        registry.names().join(", ")
                    ),
                )),
                Some(op) if op.arity() != a.arity() => out.push(lint(
                    "ML0008",
                    "algo-call-arity",
                    Severity::Error,
                    c.span,
                    format!(
                        "`@{name}({input}, ...)` called with {} argument terms, \
                         but the operator takes {}",
                        a.arity(),
                        op.arity()
                    ),
                )),
                Some(_) => {}
            }
        }
        if c.agg.is_some() {
            let recursive_dep = c.body.iter().find_map(|l| match l {
                Literal::Pos(a)
                    if graph.same_scc(a.predicate.as_str(), c.head.predicate.as_str()) =>
                {
                    Some(a.predicate.to_string())
                }
                _ => None,
            });
            if let Some(p) = recursive_dep {
                out.push(lint(
                    "ML0008",
                    "aggregation-through-recursion",
                    Severity::Error,
                    c.span,
                    format!(
                        "aggregate clause `{c}` reads `{p}`, which is mutually recursive \
                         with its head `{}` — aggregation through recursion is not stratifiable",
                        c.head.predicate
                    ),
                ));
            }
        }
    }

    sort_lints(&mut out);
    out
}

/// [`analyze()`] plus ML0004: predicates that cannot influence the query
/// seeds. Anything defined outside `program.dependencies_of(seeds)` is
/// dead weight for this query.
pub fn analyze_for_query<'a>(
    program: &Program,
    seeds: impl IntoIterator<Item = &'a str>,
) -> Vec<Lint> {
    let mut out = analyze(program);
    let needed = program.dependencies_of(seeds);
    let mut preds: Vec<&str> = program.predicates();
    preds.sort_unstable();
    for p in preds {
        if !needed.contains(p) {
            out.push(lint(
                "ML0004",
                "unused-predicate",
                Severity::Warning,
                Span::unknown(),
                format!("predicate `{p}` cannot influence the query and is never consulted"),
            ));
        }
    }
    sort_lints(&mut out);
    out
}

/// [`analyze_for_query`] over a goal's predicates, plus ML0007: warn when
/// the goal binds no argument of any positive literal, because then the
/// magic-sets rewrite has no constants to seed demand from and
/// [`crate::Engine::run_for_goal`] degenerates to evaluating the goal's
/// entire dependency cone.
pub fn analyze_for_goal(program: &Program, goal: &[Literal]) -> Vec<Lint> {
    let seeds: Vec<&str> = goal
        .iter()
        .filter_map(Literal::atom)
        .map(|a| a.predicate.as_ref())
        .collect();
    let mut out = analyze_for_query(program, seeds);
    if !crate::magic::goal_binds_arguments(goal) {
        out.push(lint(
            "ML0007",
            "unbound-demand",
            Severity::Warning,
            Span::unknown(),
            "query goal binds no arguments; demand-driven evaluation degenerates to \
             full cone evaluation"
                .to_owned(),
        ));
    }
    sort_lints(&mut out);
    out
}

/// Deterministic report order: errors first, then by span, then code.
fn sort_lints(lints: &mut [Lint]) {
    lints.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.span.line.cmp(&b.span.line))
            .then(a.span.column.cmp(&b.span.column))
            .then(a.code.cmp(b.code))
            .then(a.message.cmp(&b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_clause, parse_program};

    #[test]
    fn clean_program_is_clean() {
        let p = parse_program(
            "edge(a, b). edge(b, c). path(X, Y) :- edge(X, Y). \
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        assert!(analyze(&p).is_empty());
    }

    #[test]
    fn negative_cycle_reported_with_witness() {
        let p = parse_program("p(X) :- base(X), not q(X). q(X) :- base(X), not p(X). base(a).")
            .unwrap();
        let lints = analyze(&p);
        let strat: Vec<&Lint> = lints.iter().filter(|l| l.code == "ML0003").collect();
        assert_eq!(strat.len(), 1);
        assert!(
            strat[0].message.contains("p -> q -> p") || strat[0].message.contains("q -> p -> q"),
            "full cycle expected: {}",
            strat[0].message
        );
    }

    #[test]
    fn unreachable_rule_flagged() {
        let p = parse_program("p(X) :- ghost(X). q(a).").unwrap();
        let lints = analyze(&p);
        assert!(lints
            .iter()
            .any(|l| l.code == "ML0005" && l.message.contains("ghost")));
    }

    #[test]
    fn singleton_variable_flagged_and_underscore_exempt() {
        let p = parse_program("q(a, b). p(X) :- q(X, Lone).").unwrap();
        let lints = analyze(&p);
        assert!(lints
            .iter()
            .any(|l| l.code == "ML0006" && l.message.contains("Lone")));
        let p = parse_program("q(a, b). p(X) :- q(X, _Lone).").unwrap();
        assert!(analyze(&p).iter().all(|l| l.code != "ML0006"));
    }

    #[test]
    fn unused_predicate_only_with_seeds() {
        let p = parse_program("q(a). r(b). s(X) :- q(X).").unwrap();
        assert!(analyze(&p).iter().all(|l| l.code != "ML0004"));
        let lints = analyze_for_query(&p, ["s"]);
        assert!(lints
            .iter()
            .any(|l| l.code == "ML0004" && l.message.contains("`r`")));
        assert!(lints
            .iter()
            .all(|l| !(l.code == "ML0004" && l.message.contains("`q`"))));
    }

    #[test]
    fn unbound_goal_flagged_as_unbound_demand() {
        let p = parse_program("edge(a, b). path(X, Y) :- edge(X, Y).").unwrap();
        let free = crate::parser::parse_query("path(X, Y)").unwrap();
        let lints = analyze_for_goal(&p, &free);
        assert!(lints
            .iter()
            .any(|l| l.code == "ML0007" && l.name == "unbound-demand"));
        let bound = crate::parser::parse_query("path(a, Y)").unwrap();
        assert!(analyze_for_goal(&p, &bound)
            .iter()
            .all(|l| l.code != "ML0007"));
    }

    #[test]
    fn unknown_algo_operator_flagged() {
        let p = parse_program("edge(a, b). r(X, Y) :- @frobnicate(edge, X, Y).").unwrap();
        let lints = analyze(&p);
        let hit = lints
            .iter()
            .find(|l| l.code == "ML0008" && l.name == "unknown-algo")
            .unwrap();
        assert_eq!(hit.severity, Severity::Error);
        assert!(hit.message.contains("@frobnicate"), "{}", hit.message);
        assert!(hit.message.contains("bfs"), "{}", hit.message);
    }

    #[test]
    fn algo_call_arity_mismatch_flagged() {
        let p = parse_program("edge(a, b). r(X) :- @bfs(edge, X).").unwrap();
        let lints = analyze(&p);
        assert!(lints
            .iter()
            .any(|l| l.code == "ML0008" && l.name == "algo-call-arity"));
        let clean = parse_program("edge(a, b). r(X, Y) :- @bfs(edge, X, Y).").unwrap();
        assert!(analyze(&clean).iter().all(|l| l.code != "ML0008"));
    }

    #[test]
    fn aggregation_through_recursion_flagged() {
        let p =
            parse_program("part(a, b). part(b, c). total(P, count(S)) :- total(P, S), part(P, S).")
                .unwrap();
        let lints = analyze(&p);
        let hit = lints
            .iter()
            .find(|l| l.code == "ML0008" && l.name == "aggregation-through-recursion")
            .unwrap();
        assert_eq!(hit.severity, Severity::Error);
        assert!(hit.message.contains("`total`"), "{}", hit.message);
        // Aggregation over a lower stratum is fine.
        let clean =
            parse_program("part(a, b). part(b, c). total(P, count(S)) :- part(P, S).").unwrap();
        assert!(analyze(&clean).iter().all(|l| l.code != "ML0008"));
    }

    #[test]
    fn algo_input_and_aggregate_body_are_not_unused() {
        // `edge` is consulted only through the `@bfs(edge, ...)` call;
        // `visit` only inside an aggregate body. Neither is ML0004 dead.
        let p = parse_program(
            "edge(a, b). edge(b, c). reach(X, Y) :- @bfs(edge, X, Y). \
             visit(a, u1). visit(a, u2). hits(P, count(U)) :- visit(P, U).",
        )
        .unwrap();
        let lints = analyze_for_query(&p, ["reach", "hits"]);
        assert!(
            lints.iter().all(|l| l.code != "ML0004"),
            "unexpected ML0004: {lints:?}"
        );
    }

    #[test]
    fn check_clauses_collects_all_errors() {
        // Bypass Program validation: parse clauses individually.
        let c1 = parse_clause("p(X) :- q(Y).").unwrap();
        let c2 = parse_clause("q(a, b).").unwrap();
        let c3 = parse_clause("q(c).").unwrap();
        let lints = check_clauses(&[c1, c2, c3]);
        assert!(lints.iter().any(|l| l.code == "ML0001"));
        assert!(lints.iter().any(|l| l.code == "ML0002"));
    }

    #[test]
    fn spans_point_at_clauses() {
        let p = parse_program("q(a, b).\np(X) :- q(X, Lone).").unwrap();
        let lints = analyze(&p);
        let single = lints.iter().find(|l| l.code == "ML0006").unwrap();
        assert_eq!(single.span.line, 2);
    }
}
