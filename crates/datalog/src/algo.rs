//! Native algorithm operators: whole-relation graph algorithms that run
//! directly over the columnar storage instead of through semi-naive rule
//! deltas.
//!
//! A rule body may call an operator with the syntax
//!
//! ```text
//! reach(X, Y) :- @bfs(edge, X, Y).
//! ```
//!
//! which parses to a positive literal over the *synthetic predicate*
//! `@bfs(edge)`: the call (operator + input relation) is baked into the
//! predicate name, the remaining terms are ordinary arguments. That keeps
//! the plan and join machinery unchanged — an algo atom scans/joins like
//! any relation — while the stratifier places the synthetic predicate
//! strictly above its input (an algo call is a dependency edge like
//! negation: the input must be *complete* before the operator runs).
//! [`crate::Engine`] materializes each algo predicate once, at the start
//! of its stratum, by running the registered operator over the finished
//! input relation.
//!
//! Operators implement [`AlgoImpl`] — in the style of Cozo's algorithm
//! plan operators — and are looked up by name in the [`AlgoRegistry`].
//! Every operator loop holds a `GuardCursor`, so deadlines, fact
//! budgets, and cancellation trip inside the algorithm exactly as they do
//! inside joins.
//!
//! Built-in operators:
//!
//! | call | input | output | meaning |
//! |------|-------|--------|---------|
//! | `@bfs(e, X, Y)` | `e(from, to)` | pairs | `Y` reachable from `X` via ≥ 1 edge |
//! | `@spath(e, X, Y, D)` | `e(from, to, w)`, `w ≥ 0` | triples | minimal path weight `D` from `X` to `Y` (≥ 1 edge) |
//! | `@cc(e, X, R)` | `e(a, b)` (read undirected) | pairs | `R` is `X`'s component representative (smallest node) |
//! | `@degree(e, X, D)` | `e(from, to)` | pairs | out-degree of every node occurring in `e` |
//! | `@topk(s, k, X, V)` | `s(item, score)` | triples | the `k` highest-scoring tuples; `k` a positive integer literal at the call site |

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};

use crate::atom::Literal;
use crate::fx::FxHashMap;
use crate::guard::{EvalGuard, GuardCursor};
use crate::program::Program;
use crate::storage::{key_of, Relation};
use crate::term::{Const, SymId};
use crate::{DatalogError, Result};

/// The synthetic predicate name for a call of `algo` over `input`.
#[must_use]
pub fn call_predicate(algo: &str, input: &str) -> String {
    format!("@{algo}({input})")
}

/// Split a synthetic algo predicate name back into `(algo, input)`.
/// Returns `None` for ordinary predicate names.
#[must_use]
pub fn parse_call(pred: &str) -> Option<(&str, &str)> {
    let rest = pred.strip_prefix('@')?;
    let open = rest.find('(')?;
    let name = &rest[..open];
    let input = rest[open + 1..].strip_suffix(')')?;
    if name.is_empty() || input.is_empty() {
        return None;
    }
    Some((name, input))
}

/// Everything an operator sees for one materialization: the (complete)
/// input relation, the call-site constant patterns, and the evaluation
/// guard its loops must tick.
pub struct AlgoContext<'a> {
    /// The input relation; `None` when it has no facts (treated empty).
    pub(crate) input: Option<&'a Relation>,
    /// One entry per distinct call site: the argument terms with
    /// constants kept and variables as `None`. Operators with limits
    /// (`@topk`) read them from here.
    pub(crate) patterns: &'a [Vec<Option<Const>>],
    /// The run's shared evaluation guard.
    pub(crate) guard: &'a EvalGuard,
}

/// A native algorithm operator.
///
/// `run` receives the *complete* input relation (the stratifier
/// guarantees the input's stratum is finished) and returns the full
/// output relation; the engine inserts the tuples under the synthetic
/// call predicate. Implementations must tick a `GuardCursor` inside
/// their loops so guards trip mid-algorithm.
pub trait AlgoImpl: Send + Sync {
    /// The operator's surface name (`bfs` for `@bfs(...)` calls).
    fn name(&self) -> &'static str;
    /// Number of output argument terms at the call site.
    fn arity(&self) -> usize;
    /// Required arity of the input relation.
    fn input_arity(&self) -> usize;
    /// Validate call-site options/limits before running. The default
    /// accepts everything; `@topk` checks its integer limit here.
    fn validate(&self, _ctx: &AlgoContext<'_>) -> Result<()> {
        Ok(())
    }
    /// Compute the operator's full output relation.
    fn run(&self, ctx: &AlgoContext<'_>) -> Result<Relation>;
}

/// A name → operator table. [`registry`] holds the process-wide instance
/// with the built-in operators.
pub struct AlgoRegistry {
    ops: FxHashMap<&'static str, Arc<dyn AlgoImpl>>,
}

impl AlgoRegistry {
    /// A registry pre-populated with the built-in operators.
    #[must_use]
    pub fn with_builtins() -> Self {
        let mut r = AlgoRegistry {
            ops: FxHashMap::default(),
        };
        r.register(Arc::new(Bfs));
        r.register(Arc::new(ShortestPath));
        r.register(Arc::new(ConnectedComponents));
        r.register(Arc::new(Degree));
        r.register(Arc::new(TopK));
        r
    }

    /// Register (or replace) an operator under its name.
    pub fn register(&mut self, op: Arc<dyn AlgoImpl>) {
        self.ops.insert(op.name(), op);
    }

    /// Look up an operator by surface name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&dyn AlgoImpl> {
        self.ops.get(name).map(AsRef::as_ref)
    }

    /// The registered operator names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.ops.keys().copied().collect();
        names.sort_unstable();
        names
    }
}

/// The process-wide operator registry (built-ins only).
pub fn registry() -> &'static AlgoRegistry {
    static REGISTRY: OnceLock<AlgoRegistry> = OnceLock::new();
    REGISTRY.get_or_init(AlgoRegistry::with_builtins)
}

fn algo_err(algo: &str, message: impl Into<String>) -> DatalogError {
    DatalogError::AlgoFailure {
        algo: algo.to_owned(),
        message: message.into(),
    }
}

/// Collect the call-site constant patterns for one synthetic algo
/// predicate: one entry per distinct pattern, from every positive body
/// literal of the program plus `extra` goal literals.
pub(crate) fn call_patterns(
    program: &Program,
    extra: &[Literal],
    pred: SymId,
) -> Vec<Vec<Option<Const>>> {
    let mut out: Vec<Vec<Option<Const>>> = Vec::new();
    let body_atoms = program
        .clauses()
        .iter()
        .flat_map(|c| c.body.iter())
        .chain(extra.iter());
    for l in body_atoms {
        let Some(a) = l.atom() else { continue };
        if a.predicate != pred {
            continue;
        }
        let pattern: Vec<Option<Const>> = a.terms.iter().map(|t| t.as_const().copied()).collect();
        if !out.contains(&pattern) {
            out.push(pattern);
        }
    }
    out
}

/// Run the named operator over `input`, validating the call arity, the
/// input arity, and operator-specific options first.
pub(crate) fn materialize(
    name: &str,
    input: Option<&Relation>,
    call_arity: usize,
    patterns: &[Vec<Option<Const>>],
    guard: &EvalGuard,
) -> Result<Relation> {
    let op = registry()
        .get(name)
        .ok_or_else(|| DatalogError::UnknownAlgo {
            name: name.to_owned(),
        })?;
    if call_arity != op.arity() {
        return Err(algo_err(
            name,
            format!(
                "takes {} argument terms, called with {call_arity}",
                op.arity()
            ),
        ));
    }
    if let Some(actual) = input.and_then(Relation::arity) {
        if actual != op.input_arity() {
            return Err(algo_err(
                name,
                format!(
                    "input relation must have arity {}, got {actual}",
                    op.input_arity()
                ),
            ));
        }
    }
    let ctx = AlgoContext {
        input,
        patterns,
        guard,
    };
    op.validate(&ctx)?;
    op.run(&ctx)
}

/// A compressed-sparse-row adjacency view of an edge relation, nodes
/// sorted by the storage key order so every derived choice (component
/// representatives, tie-breaks) is deterministic.
struct CsrGraph {
    nodes: Vec<Const>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    /// Parallel to `targets`; empty for unweighted builds.
    weights: Vec<i64>,
}

impl CsrGraph {
    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn out_edges(&self, v: u32) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }
}

fn build_csr(
    algo: &str,
    rel: Option<&Relation>,
    weighted: bool,
    guard: &EvalGuard,
) -> Result<CsrGraph> {
    let empty = CsrGraph {
        nodes: Vec::new(),
        offsets: vec![0],
        targets: Vec::new(),
        weights: Vec::new(),
    };
    let Some(rel) = rel else { return Ok(empty) };
    let mut rows = Vec::new();
    rel.live_rows(&mut rows);
    if rows.is_empty() {
        return Ok(empty);
    }
    let mut cursor = GuardCursor::new();
    let mut nodes: Vec<Const> = Vec::with_capacity(rows.len() * 2);
    for &r in &rows {
        cursor.probe(guard)?;
        nodes.push(rel.cell(r, 0));
        nodes.push(rel.cell(r, 1));
    }
    nodes.sort_unstable_by_key(|c| key_of(*c));
    nodes.dedup();
    let index: FxHashMap<Const, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    let mut offsets = vec![0u32; nodes.len() + 1];
    for &r in &rows {
        offsets[index[&rel.cell(r, 0)] as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut fill: Vec<u32> = offsets[..nodes.len()].to_vec();
    let mut targets = vec![0u32; rows.len()];
    let mut weights = if weighted {
        vec![0i64; rows.len()]
    } else {
        Vec::new()
    };
    for &r in &rows {
        cursor.probe(guard)?;
        let s = index[&rel.cell(r, 0)] as usize;
        let pos = fill[s] as usize;
        fill[s] += 1;
        targets[pos] = index[&rel.cell(r, 1)];
        if weighted {
            let w = rel
                .cell(r, 2)
                .as_int()
                .filter(|w| *w >= 0)
                .ok_or_else(|| algo_err(algo, "edge weights must be non-negative integers"))?;
            weights[pos] = w;
        }
    }
    cursor.flush(guard)?;
    Ok(CsrGraph {
        nodes,
        offsets,
        targets,
        weights,
    })
}

/// `@bfs(edge, X, Y)` — `Y` is reachable from `X` along ≥ 1 edge:
/// exactly the transitive closure the rule-at-a-time pair
/// `path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).`
/// computes, but via per-source breadth-first search over a CSR
/// adjacency with an epoch-stamped visited array — no deltas, no joins.
struct Bfs;

impl AlgoImpl for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn arity(&self) -> usize {
        2
    }

    fn input_arity(&self) -> usize {
        2
    }

    fn run(&self, ctx: &AlgoContext<'_>) -> Result<Relation> {
        let g = build_csr(self.name(), ctx.input, false, ctx.guard)?;
        let mut out = Relation::new();
        let n = g.len();
        let mut seen = vec![u32::MAX; n];
        let mut queue: Vec<u32> = Vec::new();
        let mut cursor = GuardCursor::new();
        for s in 0..n as u32 {
            if g.out_edges(s).is_empty() {
                continue;
            }
            queue.clear();
            for i in g.out_edges(s) {
                let t = g.targets[i];
                cursor.probe(ctx.guard)?;
                if seen[t as usize] != s {
                    seen[t as usize] = s;
                    queue.push(t);
                }
            }
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                cursor.emit(ctx.guard)?;
                out.insert(vec![g.nodes[s as usize], g.nodes[v as usize]]);
                for i in g.out_edges(v) {
                    let t = g.targets[i];
                    cursor.probe(ctx.guard)?;
                    if seen[t as usize] != s {
                        seen[t as usize] = s;
                        queue.push(t);
                    }
                }
            }
        }
        cursor.flush(ctx.guard)?;
        Ok(out)
    }
}

/// `@spath(edge, X, Y, D)` — minimal total weight of a ≥ 1-edge path
/// from `X` to `Y`, per-source Dijkstra (weights validated non-negative).
struct ShortestPath;

impl AlgoImpl for ShortestPath {
    fn name(&self) -> &'static str {
        "spath"
    }

    fn arity(&self) -> usize {
        3
    }

    fn input_arity(&self) -> usize {
        3
    }

    fn run(&self, ctx: &AlgoContext<'_>) -> Result<Relation> {
        let g = build_csr(self.name(), ctx.input, true, ctx.guard)?;
        let mut out = Relation::new();
        let n = g.len();
        let mut dist = vec![0i64; n];
        let mut epoch = vec![u32::MAX; n];
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
        let mut cursor = GuardCursor::new();
        for s in 0..n as u32 {
            if g.out_edges(s).is_empty() {
                continue;
            }
            heap.clear();
            // Seed with the out-edges so the source itself is only
            // "reached" through a genuine cycle, matching the ≥ 1-edge
            // reading of @bfs.
            for i in g.out_edges(s) {
                cursor.probe(ctx.guard)?;
                let (t, w) = (g.targets[i], g.weights[i]);
                if epoch[t as usize] != s || w < dist[t as usize] {
                    epoch[t as usize] = s;
                    dist[t as usize] = w;
                    heap.push(Reverse((w, t)));
                }
            }
            while let Some(Reverse((d, v))) = heap.pop() {
                cursor.probe(ctx.guard)?;
                if epoch[v as usize] != s || d > dist[v as usize] {
                    continue;
                }
                for i in g.out_edges(v) {
                    cursor.probe(ctx.guard)?;
                    let t = g.targets[i];
                    let nd = d.checked_add(g.weights[i]).ok_or_else(|| {
                        algo_err(self.name(), "path weight overflows 64-bit integer")
                    })?;
                    if epoch[t as usize] != s || nd < dist[t as usize] {
                        epoch[t as usize] = s;
                        dist[t as usize] = nd;
                        heap.push(Reverse((nd, t)));
                    }
                }
            }
            for v in 0..n {
                if epoch[v] == s {
                    cursor.emit(ctx.guard)?;
                    out.insert(vec![g.nodes[s as usize], g.nodes[v], Const::int(dist[v])]);
                }
            }
        }
        cursor.flush(ctx.guard)?;
        Ok(out)
    }
}

/// `@cc(edge, X, R)` — connected components of the *undirected* reading
/// of the edge relation, union-find with the smallest node (storage key
/// order) as the deterministic representative. Every node occurring in
/// the relation gets a row.
struct ConnectedComponents;

impl AlgoImpl for ConnectedComponents {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn arity(&self) -> usize {
        2
    }

    fn input_arity(&self) -> usize {
        2
    }

    fn run(&self, ctx: &AlgoContext<'_>) -> Result<Relation> {
        let g = build_csr(self.name(), ctx.input, false, ctx.guard)?;
        let n = g.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize];
                v = parent[v as usize];
            }
            v
        }
        let mut cursor = GuardCursor::new();
        for v in 0..n as u32 {
            for i in g.out_edges(v) {
                cursor.probe(ctx.guard)?;
                let a = find(&mut parent, v);
                let b = find(&mut parent, g.targets[i]);
                // Parent the larger root under the smaller: roots are
                // then always the component's minimal node index, and
                // nodes are sorted by storage key, so the representative
                // is the smallest node — deterministic.
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => parent[b as usize] = a,
                    std::cmp::Ordering::Greater => parent[a as usize] = b,
                    std::cmp::Ordering::Equal => {}
                }
            }
        }
        let mut out = Relation::new();
        for v in 0..n as u32 {
            cursor.emit(ctx.guard)?;
            let r = find(&mut parent, v);
            out.insert(vec![g.nodes[v as usize], g.nodes[r as usize]]);
        }
        cursor.flush(ctx.guard)?;
        Ok(out)
    }
}

/// `@degree(edge, X, D)` — out-degree of every node occurring in the
/// edge relation (targets with no outgoing edges get degree 0).
struct Degree;

impl AlgoImpl for Degree {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn arity(&self) -> usize {
        2
    }

    fn input_arity(&self) -> usize {
        2
    }

    fn run(&self, ctx: &AlgoContext<'_>) -> Result<Relation> {
        let g = build_csr(self.name(), ctx.input, false, ctx.guard)?;
        let mut out = Relation::new();
        let mut cursor = GuardCursor::new();
        for v in 0..g.len() as u32 {
            cursor.emit(ctx.guard)?;
            let deg = g.out_edges(v).len() as i64;
            out.insert(vec![g.nodes[v as usize], Const::int(deg)]);
        }
        cursor.flush(ctx.guard)?;
        Ok(out)
    }
}

/// `@topk(score, k, X, V)` — the `k` highest-scoring tuples of a binary
/// `(item, score)` relation, scores descending with the storage key
/// order of items as the deterministic tie-break. The limit `k` must be
/// a positive integer *literal* at every call site (an operator option,
/// not a join variable); the first output column carries it back so
/// calls with different limits coexist.
struct TopK;

impl AlgoImpl for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn arity(&self) -> usize {
        3
    }

    fn input_arity(&self) -> usize {
        2
    }

    fn validate(&self, ctx: &AlgoContext<'_>) -> Result<()> {
        if ctx.patterns.is_empty() {
            return Err(algo_err(
                self.name(),
                "requires at least one call site naming a positive integer limit",
            ));
        }
        for p in ctx.patterns {
            let ok = matches!(p.first(), Some(Some(c)) if c.as_int().is_some_and(|k| k > 0));
            if !ok {
                return Err(algo_err(
                    self.name(),
                    "the first argument must be a positive integer literal (the limit k)",
                ));
            }
        }
        Ok(())
    }

    fn run(&self, ctx: &AlgoContext<'_>) -> Result<Relation> {
        let mut ks: Vec<i64> = ctx
            .patterns
            .iter()
            .filter_map(|p| p.first().copied().flatten().and_then(|c| c.as_int()))
            .collect();
        ks.sort_unstable();
        ks.dedup();
        let mut out = Relation::new();
        let Some(rel) = ctx.input else { return Ok(out) };
        let mut rows = Vec::new();
        rel.live_rows(&mut rows);
        let mut cursor = GuardCursor::new();
        let mut scored: Vec<(i64, Const)> = Vec::with_capacity(rows.len());
        for &r in &rows {
            cursor.probe(ctx.guard)?;
            let item = rel.cell(r, 0);
            let score = rel
                .cell(r, 1)
                .as_int()
                .ok_or_else(|| algo_err(self.name(), "scores must be integers"))?;
            scored.push((score, item));
        }
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| key_of(a.1).cmp(&key_of(b.1))));
        for &k in &ks {
            for &(score, item) in scored.iter().take(k as usize) {
                cursor.emit(ctx.guard)?;
                out.insert(vec![Const::int(k), item, Const::int(score)]);
            }
        }
        cursor.flush(ctx.guard)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &str)]) -> Relation {
        let mut r = Relation::new();
        for (a, b) in pairs {
            r.insert(vec![Const::sym(a), Const::sym(b)]);
        }
        r
    }

    fn run(
        name: &str,
        input: &Relation,
        arity: usize,
        patterns: &[Vec<Option<Const>>],
    ) -> Relation {
        let guard = EvalGuard::unlimited();
        materialize(name, Some(input), arity, patterns, &guard).unwrap()
    }

    #[test]
    fn call_name_roundtrip() {
        let name = call_predicate("bfs", "edge");
        assert_eq!(name, "@bfs(edge)");
        assert_eq!(parse_call(&name), Some(("bfs", "edge")));
        assert_eq!(parse_call("plain"), None);
        assert_eq!(parse_call("@broken"), None);
    }

    #[test]
    fn bfs_is_transitive_closure() {
        let rel = edges(&[("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")]);
        let out = run("bfs", &rel, 2, &[]);
        assert_eq!(out.len(), 3 + 2 + 1 + 1);
        assert!(out.contains(&[Const::sym("a"), Const::sym("d")]));
        assert!(!out.contains(&[Const::sym("a"), Const::sym("y")]));
        assert!(!out.contains(&[Const::sym("a"), Const::sym("a")]));
    }

    #[test]
    fn bfs_cycle_reaches_self() {
        let rel = edges(&[("a", "b"), ("b", "a")]);
        let out = run("bfs", &rel, 2, &[]);
        assert!(out.contains(&[Const::sym("a"), Const::sym("a")]));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn spath_picks_minimal_weight() {
        let mut rel = Relation::new();
        for (a, b, w) in [("a", "b", 1), ("b", "c", 1), ("a", "c", 5)] {
            rel.insert(vec![Const::sym(a), Const::sym(b), Const::int(w)]);
        }
        let guard = EvalGuard::unlimited();
        let out = materialize("spath", Some(&rel), 3, &[], &guard).unwrap();
        assert!(out.contains(&[Const::sym("a"), Const::sym("c"), Const::int(2)]));
        assert!(!out.contains(&[Const::sym("a"), Const::sym("c"), Const::int(5)]));
    }

    #[test]
    fn spath_rejects_negative_weights() {
        let mut rel = Relation::new();
        rel.insert(vec![Const::sym("a"), Const::sym("b"), Const::int(-1)]);
        let guard = EvalGuard::unlimited();
        let err = materialize("spath", Some(&rel), 3, &[], &guard).unwrap_err();
        assert!(matches!(err, DatalogError::AlgoFailure { .. }));
    }

    #[test]
    fn cc_smallest_node_represents() {
        let rel = edges(&[("b", "a"), ("c", "b"), ("y", "x")]);
        let out = run("cc", &rel, 2, &[]);
        // Representative is the smallest node in storage key order,
        // which for symbols is interning-order dependent but stable;
        // check all members of one component share a representative.
        let rep_of = |node: &str| -> Const {
            out.iter()
                .find(|f| f[0] == Const::sym(node))
                .map(|f| f[1])
                .unwrap()
        };
        assert_eq!(rep_of("a"), rep_of("b"));
        assert_eq!(rep_of("b"), rep_of("c"));
        assert_eq!(rep_of("x"), rep_of("y"));
        assert_ne!(rep_of("a"), rep_of("x"));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn degree_counts_out_edges() {
        let rel = edges(&[("a", "b"), ("a", "c"), ("b", "c")]);
        let out = run("degree", &rel, 2, &[]);
        assert!(out.contains(&[Const::sym("a"), Const::int(2)]));
        assert!(out.contains(&[Const::sym("b"), Const::int(1)]));
        assert!(out.contains(&[Const::sym("c"), Const::int(0)]));
    }

    #[test]
    fn topk_takes_highest_scores() {
        let mut rel = Relation::new();
        for (item, score) in [("a", 10), ("b", 30), ("c", 20), ("d", 5)] {
            rel.insert(vec![Const::sym(item), Const::int(score)]);
        }
        let patterns = vec![vec![Some(Const::int(2)), None, None]];
        let out = run("topk", &rel, 3, &patterns);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&[Const::int(2), Const::sym("b"), Const::int(30)]));
        assert!(out.contains(&[Const::int(2), Const::sym("c"), Const::int(20)]));
    }

    #[test]
    fn topk_requires_literal_limit() {
        let rel = Relation::new();
        let guard = EvalGuard::unlimited();
        let free = vec![vec![None, None, None]];
        assert!(materialize("topk", Some(&rel), 3, &free, &guard).is_err());
        assert!(materialize("topk", Some(&rel), 3, &[], &guard).is_err());
    }

    #[test]
    fn unknown_algo_reported() {
        let guard = EvalGuard::unlimited();
        let err = materialize("pagerank", None, 2, &[], &guard).unwrap_err();
        assert!(matches!(err, DatalogError::UnknownAlgo { name } if name == "pagerank"));
    }

    #[test]
    fn arity_mismatch_reported() {
        let rel = edges(&[("a", "b")]);
        let guard = EvalGuard::unlimited();
        assert!(materialize("bfs", Some(&rel), 3, &[], &guard).is_err());
    }

    #[test]
    fn guard_budget_trips_inside_operator() {
        let rel = edges(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")]);
        let guard = EvalGuard::new(None, 3, None);
        guard.begin_round(0);
        let mut tripped = false;
        // The budget check fires at flush granularity; with a tiny graph
        // the flush at the end of the run must observe the overrun.
        match materialize("bfs", Some(&rel), 2, &[], &guard) {
            Err(DatalogError::BudgetExceeded { .. }) => tripped = true,
            Ok(out) => {
                // All 15 closure tuples exceed the budget of 3; the
                // final flush must have tripped, so reaching Ok means
                // the guard was never consulted — fail loudly.
                assert!(out.len() <= 3, "guard never consulted");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(tripped, "budget of 3 must trip on 15 emitted tuples");
    }
}
