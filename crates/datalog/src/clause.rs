//! Clauses (rules and facts) with range-restriction checking, carrying
//! source spans for diagnostics.

use std::collections::HashSet;
use std::fmt;

use crate::atom::{Atom, Literal};
use crate::{DatalogError, Result};

/// A source position (1-based line and column) attached to parsed
/// clauses so static analysis can point at the offending source text.
///
/// A span is *metadata, not identity*: two clauses that differ only in
/// their spans are considered equal, so `Span` deliberately compares
/// equal to every other `Span` and hashes to nothing. Programmatically
/// built clauses use [`Span::unknown`] (line 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct Span {
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// 1-based source column (0 when unknown).
    pub column: usize,
}

impl Span {
    /// A span at a known position.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }

    /// The span of a clause not read from source text.
    pub fn unknown() -> Self {
        Span::default()
    }

    /// Whether the span points at real source text.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true // spans are diagnostics metadata, never identity
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.column)
        } else {
            f.write_str("?:?")
        }
    }
}

/// The aggregate functions usable in a rule head.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of distinct witness bindings per group.
    Count,
    /// Integer sum of the aggregated variable over the witnesses.
    Sum,
    /// Minimum of the aggregated variable (any comparable constant kind).
    Min,
    /// Maximum of the aggregated variable.
    Max,
}

impl AggFunc {
    /// The surface spelling (`count`, `sum`, `min`, `max`).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse a surface spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An aggregation spec attached to a clause head: one head position holds
/// `func(V)` instead of a plain term. The remaining head positions are
/// the group-by key; the clause's value for a group is `func` folded over
/// the *distinct witness bindings* of the body (bag semantics in the
/// Bertossi–Gottlob style: every distinct binding of the body's bound
/// variables counts once, so two polyinstantiated tuples differing only
/// in a non-grouped column still contribute separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Aggregate {
    /// The fold applied per group.
    pub func: AggFunc,
    /// Index into `head.terms` of the aggregated variable.
    pub position: usize,
}

/// A definite clause `head :- body` (a fact when the body is empty).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    /// The head atom.
    pub head: Atom,
    /// The body literals, evaluated left to right.
    pub body: Vec<Literal>,
    /// Aggregation spec, when the head carries `count(V)`/`sum(V)`/… at
    /// one position. Aggregate clauses are stratified below their head
    /// (like negation) and evaluated once per stratum, outside the
    /// fixpoint.
    pub agg: Option<Aggregate>,
    /// Where the clause came from (ignored by equality and hashing).
    pub span: Span,
}

impl Clause {
    /// Construct a clause.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Clause {
            head,
            body,
            agg: None,
            span: Span::unknown(),
        }
    }

    /// Construct a fact (empty body).
    pub fn fact(head: Atom) -> Self {
        Clause {
            head,
            body: Vec::new(),
            agg: None,
            span: Span::unknown(),
        }
    }

    /// Attach a source span (builder-style, used by the parser).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Attach an aggregation spec (builder-style, used by the parser).
    pub fn with_aggregate(mut self, agg: Aggregate) -> Self {
        debug_assert!(agg.position < self.head.terms.len());
        self.agg = Some(agg);
        self
    }

    /// Whether the clause is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// All variables that occur in some positive body literal.
    pub fn positive_variables(&self) -> HashSet<&str> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a),
                _ => None,
            })
            .flat_map(Atom::variables)
            .collect()
    }

    /// Check range restriction (safety):
    ///
    /// 1. every head variable occurs in a positive body literal;
    /// 2. every variable of a comparison occurs in a positive body literal;
    /// 3. variables occurring **only** in a negated literal are allowed —
    ///    they are read as existentially quantified inside the negation
    ///    (`¬∃X p(…, X, …)`), which is the reading the MultiLog reduction
    ///    axioms require — but the negated literal must share at least the
    ///    property that its *bound* variables come from positive literals,
    ///    which is implied by (1)–(2) plus grounding order.
    ///
    /// Facts must be ground.
    ///
    /// Arithmetic built-ins `T = X op Y` additionally *bind* their target
    /// variable, so a target may appear in the head or in later
    /// comparisons; their operands must be bound by a positive literal or
    /// an earlier arithmetic target (checked left to right).
    pub fn check_safety(&self) -> Result<()> {
        let positive = self.positive_variables();
        let offending = |v: &str| -> DatalogError {
            DatalogError::UnsafeVariable {
                variable: v.to_owned(),
                clause: self.to_string(),
            }
        };
        // Bound set after the full body: positive vars + arith targets.
        let mut bound: HashSet<&str> = positive.clone();
        // Ordered scan for comparison/arith operand safety.
        let mut so_far: HashSet<&str> = positive.clone();
        for l in &self.body {
            match l {
                Literal::Cmp { lhs, rhs, .. } => {
                    for v in lhs.as_var().into_iter().chain(rhs.as_var()) {
                        if !so_far.contains(v) {
                            return Err(offending(v));
                        }
                    }
                }
                Literal::Arith {
                    target, lhs, rhs, ..
                } => {
                    for v in lhs.as_var().into_iter().chain(rhs.as_var()) {
                        if !so_far.contains(v) {
                            return Err(offending(v));
                        }
                    }
                    if let Some(t) = target.as_var() {
                        so_far.insert(t);
                        bound.insert(t);
                    }
                }
                Literal::Pos(_) | Literal::Neg(_) => {}
            }
        }
        for v in self.head.variables() {
            if !bound.contains(v) {
                return Err(offending(v));
            }
        }
        Ok(())
    }

    /// Variables occurring anywhere in the clause, in first-occurrence order.
    pub fn all_variables(&self) -> Vec<&str> {
        let mut seen = HashSet::new();
        let mut names: Vec<&str> = Vec::new();
        for v in self.head.variables() {
            if seen.insert(v) {
                names.push(v);
            }
        }
        for l in &self.body {
            for v in l.variables() {
                if seen.insert(v) {
                    names.push(v);
                }
            }
        }
        names
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.agg {
            Some(agg) => {
                write!(f, "{}(", self.head.predicate)?;
                for (i, t) in self.head.terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if i == agg.position {
                        write!(f, "{}({t})", agg.func)?;
                    } else {
                        write!(f, "{t}")?;
                    }
                }
                write!(f, ")")?;
            }
            None => write!(f, "{}", self.head)?,
        }
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use crate::CmpOp;

    fn a(p: &str, ts: Vec<Term>) -> Atom {
        Atom::new(p, ts)
    }

    #[test]
    fn fact_roundtrip() {
        let c = Clause::fact(a("edge", vec![Term::sym("x"), Term::sym("y")]));
        assert!(c.is_fact());
        assert_eq!(c.to_string(), "edge(x, y).");
        c.check_safety().unwrap();
    }

    #[test]
    fn rule_display() {
        let c = Clause::new(
            a("p", vec![Term::var("X")]),
            vec![
                Literal::Pos(a("q", vec![Term::var("X")])),
                Literal::Neg(a("r", vec![Term::var("X")])),
            ],
        );
        assert_eq!(c.to_string(), "p(X) :- q(X), not r(X).");
        c.check_safety().unwrap();
    }

    #[test]
    fn unsafe_head_variable() {
        let c = Clause::new(
            a("p", vec![Term::var("Y")]),
            vec![Literal::Pos(a("q", vec![Term::var("X")]))],
        );
        assert!(matches!(
            c.check_safety().unwrap_err(),
            DatalogError::UnsafeVariable { variable, .. } if variable == "Y"
        ));
    }

    #[test]
    fn unsafe_fact_with_variable() {
        let c = Clause::fact(a("p", vec![Term::var("X")]));
        assert!(c.check_safety().is_err());
    }

    #[test]
    fn unsafe_comparison_variable() {
        let c = Clause::new(
            a("p", vec![Term::var("X")]),
            vec![
                Literal::Pos(a("q", vec![Term::var("X")])),
                Literal::Cmp {
                    op: CmpOp::Lt,
                    lhs: Term::var("Z"),
                    rhs: Term::int(3),
                },
            ],
        );
        assert!(c.check_safety().is_err());
    }

    #[test]
    fn negation_only_variable_is_allowed() {
        // not q(X, Y) with Y free: read as ¬∃Y q(X, Y).
        let c = Clause::new(
            a("p", vec![Term::var("X")]),
            vec![
                Literal::Pos(a("r", vec![Term::var("X")])),
                Literal::Neg(a("q", vec![Term::var("X"), Term::var("Y")])),
            ],
        );
        c.check_safety().unwrap();
    }

    #[test]
    fn all_variables_order() {
        let c = Clause::new(
            a("p", vec![Term::var("X"), Term::var("Y")]),
            vec![Literal::Pos(a("q", vec![Term::var("Y"), Term::var("Z")]))],
        );
        assert_eq!(c.all_variables(), vec!["X", "Y", "Z"]);
    }
}
