//! Error type for the Datalog engine.

use std::fmt;

/// Errors raised while parsing, validating, or evaluating Datalog programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Syntax error with position information.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// A clause is not range-restricted (safe): the named variable in the
    /// head, a negated literal, or a comparison never occurs in a positive
    /// body literal.
    UnsafeVariable {
        /// The offending variable name.
        variable: String,
        /// Rendering of the clause for diagnostics.
        clause: String,
    },
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// The program cannot be stratified: a predicate depends negatively on
    /// itself through recursion. Carries the full witness cycle so
    /// diagnostics can show the whole offending loop, not just one name.
    NotStratifiable {
        /// The negative dependency cycle, as an ordered predicate list
        /// `p₀ → p₁ → … → pₙ` (the edge `pₙ → p₀` closes the loop, and at
        /// least one edge on the loop is negative). Never empty.
        cycle: Vec<String>,
    },
    /// A comparison built-in was applied to incomparable constants
    /// (e.g. `3 < foo`).
    IncomparableTerms {
        /// Rendering of the left operand.
        left: String,
        /// Rendering of the right operand.
        right: String,
    },
    /// Evaluation exceeded the configured fact budget (guard against
    /// accidental fact explosions in generated programs). Checked both
    /// between iterations and inside the join loop, counting facts
    /// materialized plus tuples buffered for the current round.
    BudgetExceeded {
        /// The configured budget.
        budget: usize,
        /// Facts materialized + buffered when the guard tripped.
        used: usize,
    },
    /// Evaluation exceeded its wall-clock deadline.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// Evaluation was cancelled through a
    /// [`CancelToken`](crate::CancelToken).
    Cancelled,
    /// A query referenced a predicate that neither appears in the program
    /// nor was derived.
    UnknownPredicate(String),
    /// An arithmetic built-in overflowed, divided by zero, or was applied
    /// to non-integer operands.
    ArithmeticFailure {
        /// The operator symbol.
        op: &'static str,
        /// Left operand.
        lhs: i64,
        /// Right operand.
        rhs: i64,
    },
    /// `begin` was called on an incremental engine that already has an
    /// open transaction.
    TransactionActive,
    /// An update or `commit`/`rollback` was issued outside a transaction
    /// (no `begin` in effect).
    NoActiveTransaction,
    /// A previous commit aborted mid-propagation (guard trip), leaving
    /// the materialized database inconsistent. Only
    /// [`recover`](crate::IncrementalEngine::recover) is accepted until
    /// the fixpoint has been rebuilt.
    EnginePoisoned,
    /// An internal engine invariant did not hold — e.g. a clause that
    /// bypassed validation, or stratification metadata out of sync with
    /// the rule set. Per the no-panic policy these surface as typed
    /// errors instead of `expect()` aborts, so a server embedding the
    /// engine degrades to a failed request rather than a crash.
    Internal {
        /// Which invariant was violated.
        detail: String,
    },
    /// An `@name(...)` call names an algorithm operator not present in
    /// the [`crate::algo::AlgoRegistry`].
    UnknownAlgo {
        /// The unrecognized operator name (without the `@`).
        name: String,
    },
    /// An algorithm operator rejected its call: wrong call or input
    /// arity, invalid options (e.g. a free `@topk` limit), or bad input
    /// data (e.g. negative `@spath` weights).
    AlgoFailure {
        /// The operator name.
        algo: String,
        /// What was wrong.
        message: String,
    },
    /// An aggregate could not be folded: `sum` over non-integers, or
    /// `min`/`max` over constants of different kinds within one group.
    AggregateFailure {
        /// Rendering of the aggregate clause.
        clause: String,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            DatalogError::UnsafeVariable { variable, clause } => write!(
                f,
                "unsafe variable `{variable}` in clause `{clause}`: every head, negated, \
                 and comparison variable must occur in a positive body literal"
            ),
            DatalogError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, expected {expected}"
            ),
            DatalogError::NotStratifiable { cycle } => {
                let mut loop_text = cycle.join(" -> ");
                if let Some(first) = cycle.first() {
                    loop_text.push_str(" -> ");
                    loop_text.push_str(first);
                }
                write!(
                    f,
                    "program is not stratifiable: negative dependency cycle {loop_text}"
                )
            }
            DatalogError::IncomparableTerms { left, right } => {
                write!(
                    f,
                    "cannot order incomparable constants `{left}` and `{right}`"
                )
            }
            DatalogError::BudgetExceeded { budget, used } => {
                write!(
                    f,
                    "evaluation exceeded the fact budget of {budget} ({used} used)"
                )
            }
            DatalogError::DeadlineExceeded { limit_ms } => {
                write!(f, "evaluation exceeded the deadline of {limit_ms} ms")
            }
            DatalogError::Cancelled => write!(f, "evaluation was cancelled"),
            DatalogError::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            DatalogError::ArithmeticFailure { op, lhs, rhs } => {
                write!(f, "arithmetic failure: {lhs} {op} {rhs}")
            }
            DatalogError::TransactionActive => {
                write!(
                    f,
                    "a transaction is already active: commit or roll it back first"
                )
            }
            DatalogError::NoActiveTransaction => {
                write!(f, "no active transaction: call begin first")
            }
            DatalogError::EnginePoisoned => {
                write!(
                    f,
                    "the incremental engine is poisoned by an aborted commit: call recover"
                )
            }
            DatalogError::Internal { detail } => {
                write!(f, "internal engine invariant violated: {detail}")
            }
            DatalogError::UnknownAlgo { name } => {
                write!(f, "unknown algorithm operator `@{name}`")
            }
            DatalogError::AlgoFailure { algo, message } => {
                write!(f, "algorithm operator `@{algo}`: {message}")
            }
            DatalogError::AggregateFailure { clause, message } => {
                write!(f, "aggregate in `{clause}`: {message}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<DatalogError> = vec![
            DatalogError::Parse {
                line: 1,
                column: 2,
                message: "bad".into(),
            },
            DatalogError::UnsafeVariable {
                variable: "X".into(),
                clause: "p(X).".into(),
            },
            DatalogError::ArityMismatch {
                predicate: "p".into(),
                expected: 2,
                found: 3,
            },
            DatalogError::NotStratifiable {
                cycle: vec!["win".into(), "lose".into()],
            },
            DatalogError::IncomparableTerms {
                left: "3".into(),
                right: "foo".into(),
            },
            DatalogError::BudgetExceeded {
                budget: 10,
                used: 11,
            },
            DatalogError::DeadlineExceeded { limit_ms: 250 },
            DatalogError::Cancelled,
            DatalogError::UnknownPredicate("q".into()),
            DatalogError::ArithmeticFailure {
                op: "+",
                lhs: i64::MAX,
                rhs: 1,
            },
            DatalogError::TransactionActive,
            DatalogError::NoActiveTransaction,
            DatalogError::EnginePoisoned,
            DatalogError::Internal { detail: "x".into() },
            DatalogError::UnknownAlgo {
                name: "pagerank".into(),
            },
            DatalogError::AlgoFailure {
                algo: "topk".into(),
                message: "free limit".into(),
            },
            DatalogError::AggregateFailure {
                clause: "t(sum(X)) :- p(X).".into(),
                message: "non-integer".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
