//! Incremental maintenance: a materialized fixpoint kept alive across
//! insert/retract transactions.
//!
//! The [`IncrementalEngine`] owns a [`Database`] holding the full
//! stratified fixpoint of its program and applies *deltas* instead of
//! recomputing from scratch when the extensional database changes. The
//! algorithm is counting + DRed (delete-and-rederive), stratum by
//! stratum:
//!
//! * **Counted support for asserted facts.** Every explicitly asserted
//!   fact (program fact clauses and committed inserts) is tracked in a
//!   `base` multiset-of-one; retracting a fact that was never asserted is
//!   a no-op, and a fact that is both asserted and derivable survives the
//!   loss of either support.
//! * **Deletion overestimate.** For each stratum the engine enumerates
//!   every fact with at least one derivation through a deleted fact,
//!   using the semi-naive delta variants of the stratum's compiled
//!   [`plan`](crate::plan) join plans. Deleted lower-stratum facts are
//!   temporarily re-inserted while the overestimate runs so the non-delta
//!   join positions range over (a superset of) the *old* database — the
//!   classic DRed requirement.
//! * **Rederive.** Overestimated facts are removed, then re-admitted if
//!   they are base-asserted or still derivable from the surviving
//!   database; rederivations propagate semi-naively.
//! * **Insertion propagation.** New facts propagate with the same delta
//!   plans; a fact re-derived after being deleted in the same commit nets
//!   out to no change.
//! * **Fallback.** When a stratum negates over a changed predicate, or a
//!   deletion cascade overshoots a heuristic threshold, the stratum is
//!   recomputed from scratch (its predicates reset to base facts, then a
//!   sequential semi-naive fixpoint) and the result diffed against the
//!   old contents to keep downstream deltas exact.
//!
//! Every phase threads one [`EvalGuard`] (deadline, fact budget,
//! cancellation), so a runaway cascade surfaces as the same typed errors
//! as batch evaluation. A commit that trips a guard leaves the database
//! mid-propagation: the engine is then *poisoned* and only
//! [`IncrementalEngine::recover`] (a full rematerialization) is accepted.

// The transactional update path must never panic: a long-lived belief
// server funnels every commit through this module, and an `expect()`
// here would take down every session. Internal invariants surface as
// `DatalogError::Internal` instead (tests are exempt via clippy.toml).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::time::{Duration, Instant};

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::eval::{Engine, EvalStats};
use crate::fx::{FxHashMap, FxHashSet};
use crate::guard::EvalGuard;
use crate::plan::{RulePlan, Scratch};
use crate::program::Program;
use crate::storage::{Database, Fact, FactBuf, Relation};
use crate::term::{Const, SymId, Term};
use crate::{CancelToken, DatalogError, Result};

/// One staged update inside an open transaction.
struct PendingOp {
    insert: bool,
    pred: SymId,
    fact: Fact,
}

/// Net insert/delete delta of one predicate within a commit.
#[derive(Default)]
struct PredDelta {
    ins: Vec<Fact>,
    del: Vec<Fact>,
}

/// What one [`IncrementalEngine::commit`] did, for observability and the
/// benchmark suite.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommitStats {
    /// Base facts added by this commit (net of cancelling ops).
    pub edb_inserted: usize,
    /// Base facts removed by this commit (net of cancelling ops).
    pub edb_retracted: usize,
    /// Derived facts that became true.
    pub derived_added: usize,
    /// Derived facts that became false.
    pub derived_removed: usize,
    /// Overestimated deletions re-admitted by the rederivation phase.
    pub rederived: usize,
    /// Strata that fell back to a from-scratch recompute.
    pub strata_recomputed: usize,
    /// Wall-clock time of the commit, in milliseconds.
    pub wall_ms: f64,
}

/// A materialized stratified fixpoint maintained across insert/retract
/// transactions.
///
/// ```
/// use multilog_datalog::{parse_program, Const, IncrementalEngine};
///
/// let program = parse_program(
///     "edge(a, b). path(X, Y) :- edge(X, Y).
///      path(X, Z) :- path(X, Y), edge(Y, Z).",
/// )
/// .unwrap();
/// let mut engine = IncrementalEngine::new(&program).unwrap();
/// engine.begin().unwrap();
/// engine.insert("edge", vec![Const::sym("b"), Const::sym("c")]).unwrap();
/// engine.commit().unwrap();
/// assert!(engine.database().contains("path", &[Const::sym("a"), Const::sym("c")]));
/// engine.begin().unwrap();
/// engine.retract("edge", vec![Const::sym("a"), Const::sym("b")]).unwrap();
/// engine.commit().unwrap();
/// assert!(!engine.database().contains("path", &[Const::sym("a"), Const::sym("c")]));
/// ```
pub struct IncrementalEngine {
    program: Program,
    /// Non-fact clauses; fact clauses live in `base` so they are
    /// retractable like any committed insert.
    rules: Vec<Clause>,
    /// Predicates of each stratum (interned), lowest stratum first.
    stratum_preds: Vec<FxHashSet<SymId>>,
    stratum_of: FxHashMap<SymId, usize>,
    /// Indexes into `rules` whose head predicate lives in each stratum.
    stratum_rules: Vec<Vec<usize>>,
    /// Predicates defined by at least one rule.
    idb: FxHashSet<SymId>,
    db: Database,
    /// Whether the program uses native algorithm operators or aggregate
    /// clauses. Both consume *complete* relations, so their outputs have
    /// no sound per-fact delta rules; commits recompute the fixpoint
    /// from scratch (and diff it for exact [`CommitStats`]) instead of
    /// running DRed.
    full_recompute: bool,
    /// Explicitly asserted facts: the retractable extensional support.
    base: FxHashMap<SymId, FxHashSet<Fact>>,
    pending: Vec<PendingOp>,
    in_txn: bool,
    poisoned: bool,
    fact_limit: usize,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    threads: usize,
    fallback_threshold: Option<usize>,
    /// Compiled semi-naive variants (with their reusable executor
    /// scratch), keyed by (rule index, delta body position); shared
    /// across commits so batch buffers and join-table caches stay warm.
    delta_plans: FxHashMap<(usize, usize), (RulePlan, Scratch)>,
    /// Compiled full plans, keyed by rule index (fallback round 1).
    base_plans: FxHashMap<usize, (RulePlan, Scratch)>,
    /// Per-rule/per-stratum counters from the most recent full
    /// materialization ([`IncrementalEngine::recover`]).
    materialize_stats: EvalStats,
}

impl IncrementalEngine {
    /// Create an engine and materialize the program's fixpoint.
    ///
    /// The program's fact clauses seed the extensional `base` and are
    /// retractable in later transactions, exactly like committed inserts.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratifiable`] if negation occurs through
    /// recursion; any evaluation error from the initial materialization.
    pub fn new(program: &Program) -> Result<Self> {
        let mut engine = Self::new_deferred(program)?;
        engine.recover()?;
        Ok(engine)
    }

    /// Create an engine *without* materializing the fixpoint. The engine
    /// starts poisoned: apply configuration builders (guards, threads),
    /// then call [`recover`](IncrementalEngine::recover) to run the
    /// initial materialization under that configuration.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NotStratifiable`] if negation occurs through
    /// recursion.
    pub fn new_deferred(program: &Program) -> Result<Self> {
        let strat = program.stratify()?;
        let stratum_preds: Vec<FxHashSet<SymId>> = strat
            .iter()
            .map(|preds| preds.iter().map(|p| SymId::intern(p)).collect())
            .collect();
        let mut stratum_of = FxHashMap::default();
        for (s, preds) in stratum_preds.iter().enumerate() {
            for &p in preds {
                stratum_of.insert(p, s);
            }
        }
        let mut rules = Vec::new();
        let mut base: FxHashMap<SymId, FxHashSet<Fact>> = FxHashMap::default();
        for clause in program.clauses() {
            if clause.is_fact() {
                // Safety validation guarantees fact clauses are ground;
                // a program that bypassed it surfaces here as a typed
                // error, not a panic (no-panic policy).
                let fact = clause
                    .head
                    .as_fact()
                    .ok_or_else(|| DatalogError::Internal {
                        detail: format!("fact clause `{clause}` has a non-ground head"),
                    })?;
                base.entry(clause.head.predicate)
                    .or_default()
                    .insert(fact.into());
            } else {
                rules.push(clause.clone());
            }
        }
        let idb: FxHashSet<SymId> = rules.iter().map(|r| r.head.predicate).collect();
        let mut stratum_rules = vec![Vec::new(); stratum_preds.len()];
        for (i, rule) in rules.iter().enumerate() {
            let s = stratum_of
                .get(&rule.head.predicate)
                .copied()
                .ok_or_else(|| DatalogError::Internal {
                    detail: format!(
                        "head predicate `{}` is missing from the stratification",
                        rule.head.predicate
                    ),
                })?;
            stratum_rules[s].push(i);
        }
        let full_recompute = program
            .predicates()
            .iter()
            .any(|p| crate::algo::parse_call(p).is_some())
            || program.clauses().iter().any(|c| c.agg.is_some());
        let engine = IncrementalEngine {
            program: program.clone(),
            full_recompute,
            rules,
            stratum_preds,
            stratum_of,
            stratum_rules,
            idb,
            db: Database::new(),
            base,
            pending: Vec::new(),
            in_txn: false,
            poisoned: true, // until the first materialization lands
            fact_limit: 10_000_000,
            deadline: None,
            cancel: None,
            threads: 1,
            fallback_threshold: None,
            delta_plans: FxHashMap::default(),
            base_plans: FxHashMap::default(),
            materialize_stats: EvalStats::default(),
        };
        Ok(engine)
    }

    /// Set the guard budget on materialized facts (default 10 million).
    #[must_use]
    pub fn with_fact_limit(mut self, limit: usize) -> Self {
        self.fact_limit = limit;
        self
    }

    /// Set a wall-clock deadline applied to each commit (and to
    /// [`recover`](IncrementalEngine::recover)).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Install a cooperative cancellation token consulted during commits.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Worker threads used by full rematerializations
    /// ([`recover`](IncrementalEngine::recover)); delta application
    /// itself is sequential.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the deletion-cascade size at which a stratum falls back
    /// to a from-scratch recompute. The default heuristic is
    /// `max(64, stratum_facts / 4)` per stratum.
    #[must_use]
    pub fn with_fallback_threshold(mut self, threshold: usize) -> Self {
        self.fallback_threshold = Some(threshold);
        self
    }

    /// The live materialized database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Whether an aborted commit left the database inconsistent.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Open a transaction.
    ///
    /// # Errors
    ///
    /// [`DatalogError::TransactionActive`] if one is already open;
    /// [`DatalogError::EnginePoisoned`] after an aborted commit.
    pub fn begin(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(DatalogError::EnginePoisoned);
        }
        if self.in_txn {
            return Err(DatalogError::TransactionActive);
        }
        self.in_txn = true;
        Ok(())
    }

    /// Stage an insertion of a ground fact. Inserting a fact of an IDB
    /// predicate asserts it extensionally: it stays true even if no rule
    /// derives it.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NoActiveTransaction`] outside a transaction;
    /// [`DatalogError::ArityMismatch`] if the arity contradicts the
    /// program, the stored relation, or an earlier staged update.
    pub fn insert(&mut self, predicate: &str, fact: Vec<Const>) -> Result<()> {
        self.stage(predicate, fact, true)
    }

    /// Stage a retraction of a ground fact. Retracting a fact that was
    /// never asserted (including purely derived facts) is a counted
    /// no-op.
    ///
    /// # Errors
    ///
    /// As for [`IncrementalEngine::insert`].
    pub fn retract(&mut self, predicate: &str, fact: Vec<Const>) -> Result<()> {
        self.stage(predicate, fact, false)
    }

    fn stage(&mut self, predicate: &str, fact: Vec<Const>, insert: bool) -> Result<()> {
        if self.poisoned {
            return Err(DatalogError::EnginePoisoned);
        }
        if !self.in_txn {
            return Err(DatalogError::NoActiveTransaction);
        }
        let pred = SymId::intern(predicate);
        let known = self
            .program
            .arity(predicate)
            .or_else(|| self.db.relation_id(pred).and_then(Relation::arity))
            .or_else(|| {
                self.pending
                    .iter()
                    .find(|op| op.pred == pred)
                    .map(|op| op.fact.len())
            });
        if let Some(expected) = known {
            if expected != fact.len() {
                return Err(DatalogError::ArityMismatch {
                    predicate: predicate.to_owned(),
                    expected,
                    found: fact.len(),
                });
            }
        }
        self.pending.push(PendingOp {
            insert,
            pred,
            fact: fact.into(),
        });
        Ok(())
    }

    /// Discard the open transaction's staged updates.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NoActiveTransaction`] outside a transaction;
    /// [`DatalogError::EnginePoisoned`] after an aborted commit.
    pub fn rollback(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(DatalogError::EnginePoisoned);
        }
        if !self.in_txn {
            return Err(DatalogError::NoActiveTransaction);
        }
        self.pending.clear();
        self.in_txn = false;
        Ok(())
    }

    /// Apply the staged updates and incrementally maintain the fixpoint.
    ///
    /// # Errors
    ///
    /// [`DatalogError::NoActiveTransaction`] outside a transaction; guard
    /// trips ([`DatalogError::BudgetExceeded`],
    /// [`DatalogError::DeadlineExceeded`], [`DatalogError::Cancelled`])
    /// poison the engine — the base is rolled back to its pre-transaction
    /// state and [`recover`](IncrementalEngine::recover) must run before
    /// further use.
    pub fn commit(&mut self) -> Result<CommitStats> {
        if self.poisoned {
            return Err(DatalogError::EnginePoisoned);
        }
        if !self.in_txn {
            return Err(DatalogError::NoActiveTransaction);
        }
        self.in_txn = false;
        let ops = std::mem::take(&mut self.pending);
        let start = Instant::now();
        let mut stats = CommitStats::default();
        if ops.is_empty() {
            return Ok(stats);
        }
        // Replay ops onto the base, netting out cancelling pairs. The
        // snapshot restores the base if the commit aborts mid-flight.
        let mut snapshot: FxHashMap<SymId, FxHashSet<Fact>> = FxHashMap::default();
        for op in &ops {
            snapshot
                .entry(op.pred)
                .or_insert_with(|| self.base.get(&op.pred).cloned().unwrap_or_default());
        }
        let mut added: FxHashMap<SymId, FxHashSet<Fact>> = FxHashMap::default();
        let mut removed: FxHashMap<SymId, FxHashSet<Fact>> = FxHashMap::default();
        for op in ops {
            let slot = self.base.entry(op.pred).or_default();
            if op.insert {
                if slot.insert(op.fact.clone())
                    && !removed.entry(op.pred).or_default().remove(&op.fact)
                {
                    added.entry(op.pred).or_default().insert(op.fact);
                }
            } else if slot.remove(&op.fact) && !added.entry(op.pred).or_default().remove(&op.fact) {
                removed.entry(op.pred).or_default().insert(op.fact);
            }
        }
        stats.edb_inserted = added.values().map(FxHashSet::len).sum();
        stats.edb_retracted = removed.values().map(FxHashSet::len).sum();
        let result = if self.full_recompute {
            self.recompute_all(&mut stats)
        } else {
            let guard = EvalGuard::new(self.deadline, self.fact_limit, self.cancel.clone());
            self.apply_deltas(added, removed, &guard, &mut stats)
        };
        match result {
            Ok(()) => {
                // Seal materialized index tails so copy-on-write clones
                // of this database (published snapshots) carry fully
                // sorted indexes — immutable readers cannot seal lazily.
                self.db.seal_indexes();
                stats.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                Ok(stats)
            }
            Err(e) => {
                self.poisoned = true;
                for (pred, facts) in snapshot {
                    if facts.is_empty() {
                        self.base.remove(&pred);
                    } else {
                        self.base.insert(pred, facts);
                    }
                }
                Err(e)
            }
        }
    }

    /// Rebuild the fixpoint from scratch (rules + surviving base) and
    /// clear the poisoned flag. Uses the configured thread count.
    ///
    /// # Errors
    ///
    /// Any evaluation error from the full materialization; the engine
    /// stays poisoned on failure.
    pub fn recover(&mut self) -> Result<()> {
        self.in_txn = false;
        self.pending.clear();
        let program = self.full_program()?;
        let mut engine = Engine::new(&program)?
            .with_threads(self.threads)
            .with_fact_limit(self.fact_limit);
        if let Some(d) = self.deadline {
            engine = engine.with_deadline(d);
        }
        if let Some(token) = &self.cancel {
            engine = engine.with_cancel_token(token.clone());
        }
        let (db, stats) = engine.run_with_stats()?;
        self.db = db;
        self.db.seal_indexes();
        self.materialize_stats = stats;
        self.poisoned = false;
        Ok(())
    }

    /// Per-rule/per-stratum statistics from the most recent full
    /// materialization (the constructor's initial run or the latest
    /// [`recover`](IncrementalEngine::recover)). Commits do not update
    /// these — see [`CommitStats`] for per-commit counters.
    pub fn materialize_stats(&self) -> &EvalStats {
        &self.materialize_stats
    }

    /// The rules plus the current base rendered back into a program — the
    /// from-scratch semantics this engine's database must always match.
    ///
    /// This is what demand-driven (magic-sets) point queries evaluate
    /// against: a goal-directed run over this program answers exactly as
    /// a query over the materialized database, without requiring the
    /// materialization to exist (the engine may still be deferred or
    /// poisoned).
    ///
    /// # Errors
    ///
    /// Validation errors re-rendering the clauses (cannot happen for a
    /// program this engine accepted, kept for safety).
    pub fn current_program(&self) -> Result<Program> {
        self.full_program()
    }

    fn full_program(&self) -> Result<Program> {
        let mut clauses = Vec::new();
        let mut preds: Vec<SymId> = self.base.keys().copied().collect();
        preds.sort_unstable();
        for pred in preds {
            let mut facts: Vec<&Fact> = self.base[&pred].iter().collect();
            facts.sort();
            for fact in facts {
                clauses.push(Clause::fact(Atom {
                    predicate: pred,
                    terms: fact.iter().map(|c| Term::Const(*c)).collect(),
                }));
            }
        }
        clauses.extend(self.rules.iter().cloned());
        Program::from_clauses(clauses)
    }

    /// The full-recompute commit mode for programs with algorithm
    /// operators or aggregate clauses: re-run the batch engine over the
    /// updated base, diff the result against the old materialization for
    /// exact [`CommitStats`], and swap it in. Guards apply through the
    /// batch engine's own configuration.
    fn recompute_all(&mut self, stats: &mut CommitStats) -> Result<()> {
        let program = self.full_program()?;
        let mut engine = Engine::new(&program)?
            .with_threads(self.threads)
            .with_fact_limit(self.fact_limit);
        if let Some(d) = self.deadline {
            engine = engine.with_deadline(d);
        }
        if let Some(token) = &self.cancel {
            engine = engine.with_cancel_token(token.clone());
        }
        let new_db = engine.run()?;
        let mut added_total = 0usize;
        let mut removed_total = 0usize;
        for (pred, rel) in new_db.relations() {
            let old = self.db.relation(pred);
            for fact in rel.iter() {
                if old.is_none_or(|r| !r.contains(&fact)) {
                    added_total += 1;
                }
            }
        }
        for (pred, rel) in self.db.relations() {
            let new = new_db.relation(pred);
            for fact in rel.iter() {
                if new.is_none_or(|r| !r.contains(&fact)) {
                    removed_total += 1;
                }
            }
        }
        stats.derived_added = added_total.saturating_sub(stats.edb_inserted);
        stats.derived_removed = removed_total.saturating_sub(stats.edb_retracted);
        stats.strata_recomputed = self.stratum_preds.len();
        self.db = new_db;
        Ok(())
    }

    /// The stratum-by-stratum delta application (see module docs).
    fn apply_deltas(
        &mut self,
        added: FxHashMap<SymId, FxHashSet<Fact>>,
        removed: FxHashMap<SymId, FxHashSet<Fact>>,
        guard: &EvalGuard,
        stats: &mut CommitStats,
    ) -> Result<()> {
        let Self {
            rules,
            stratum_preds,
            stratum_of,
            stratum_rules,
            idb,
            db,
            base,
            fallback_threshold,
            delta_plans,
            base_plans,
            ..
        } = self;
        let mut changes: FxHashMap<SymId, PredDelta> = FxHashMap::default();
        let mut tentative: Vec<Vec<(SymId, Fact)>> = vec![Vec::new(); stratum_preds.len()];

        // Physical EDB application. Pure-EDB deletions are definite; a
        // deleted base fact of an IDB predicate may still be derivable,
        // so it only becomes a *tentative* deletion in its own stratum.
        for (pred, facts) in sorted_deltas(removed) {
            if idb.contains(&pred) {
                let s = stratum_of.get(&pred).copied().unwrap_or(0);
                for fact in facts {
                    if db.contains_id(pred, &fact) {
                        tentative[s].push((pred, fact));
                    }
                }
            } else {
                for fact in facts {
                    if db.retract_id(pred, &fact) {
                        changes.entry(pred).or_default().del.push(fact);
                    }
                }
            }
        }
        for (pred, facts) in sorted_deltas(added) {
            for fact in facts {
                if db.insert_if_new_id(pred, &fact) {
                    changes.entry(pred).or_default().ins.push(fact);
                }
            }
        }

        for s in 0..stratum_preds.len() {
            let preds = &stratum_preds[s];
            let rule_idxs = &stratum_rules[s];
            let seeds = std::mem::take(&mut tentative[s]);
            if rule_idxs.is_empty() {
                // No rules can rederive: tentative deletions are definite.
                for (pred, fact) in seeds {
                    if db.retract_id(pred, &fact) {
                        changes.entry(pred).or_default().del.push(fact);
                    }
                }
                continue;
            }
            let touched =
                |l: &Literal| l.atom().is_some_and(|a| changes.contains_key(&a.predicate));
            if seeds.is_empty()
                && !rule_idxs
                    .iter()
                    .any(|&ri| rules[ri].body.iter().any(touched))
            {
                continue;
            }
            // Incremental maintenance through negation would need the
            // old truth of the negated predicate; recompute instead.
            let neg_changed = rule_idxs.iter().any(|&ri| {
                rules[ri]
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Neg(a) if changes.contains_key(&a.predicate)))
            });
            if neg_changed {
                recompute_stratum(
                    rules,
                    rule_idxs,
                    preds,
                    db,
                    base,
                    base_plans,
                    delta_plans,
                    guard,
                    &mut changes,
                )?;
                stats.strata_recomputed += 1;
                continue;
            }

            // Phase A: deletion overestimate. Temporarily restore deleted
            // lower-stratum facts so the non-delta positions of the delta
            // joins range over the old database.
            let mut dset: FxHashSet<(SymId, Fact)> = FxHashSet::default();
            let mut frontier: FxHashMap<SymId, FactBuf> = FxHashMap::default();
            for (pred, fact) in &seeds {
                if dset.insert((*pred, fact.clone())) {
                    frontier
                        .entry(*pred)
                        .or_default()
                        .push_row(fact.iter().copied());
                }
            }
            let body_preds: FxHashSet<SymId> = rule_idxs
                .iter()
                .flat_map(|&ri| rules[ri].body.iter())
                .filter_map(|l| match l {
                    Literal::Pos(a) => Some(a.predicate),
                    _ => None,
                })
                .collect();
            let mut temps: Vec<(SymId, Fact)> = Vec::new();
            for &q in &body_preds {
                // Own-stratum IDB deletions arrive as tentative seeds, never
                // as `changes` entries; everything else (lower strata and
                // same-stratum pure-EDB predicates) seeds the frontier here.
                if preds.contains(&q) && idb.contains(&q) {
                    continue;
                }
                if let Some(delta) = changes.get(&q) {
                    for fact in &delta.del {
                        if db.insert_if_new_id(q, fact) {
                            temps.push((q, fact.clone()));
                        }
                        frontier
                            .entry(q)
                            .or_default()
                            .push_row(fact.iter().copied());
                    }
                }
            }
            let stratum_size: usize = preds
                .iter()
                .map(|&p| db.relation_id(p).map_or(0, Relation::len))
                .sum();
            let threshold = fallback_threshold.unwrap_or_else(|| 64.max(stratum_size / 4));
            let mut fell_back = false;
            while !frontier.is_empty() {
                guard.begin_round(db.fact_count());
                let mut next: FxHashMap<SymId, FactBuf> = FxHashMap::default();
                for &ri in rule_idxs {
                    for (pos, lit) in rules[ri].body.iter().enumerate() {
                        let Literal::Pos(atom) = lit else { continue };
                        let Some(delta) = frontier.get(&atom.predicate) else {
                            continue;
                        };
                        let (plan, scratch) = delta_plan(delta_plans, rules, db, ri, pos)?;
                        ensure_plan_indexes(db, plan);
                        let mut out = FactBuf::default();
                        plan.eval(db, Some(delta), scratch, &mut out, guard)?;
                        for fact in out.rows() {
                            if db.contains_id(plan.head_pred, fact)
                                && dset.insert((plan.head_pred, Fact::from(fact)))
                            {
                                next.entry(plan.head_pred)
                                    .or_default()
                                    .push_row(fact.iter().copied());
                            }
                        }
                    }
                }
                if dset.len() > threshold {
                    fell_back = true;
                    break;
                }
                frontier = next;
            }
            for (q, fact) in temps {
                db.retract_id(q, &fact);
            }
            if fell_back {
                recompute_stratum(
                    rules,
                    rule_idxs,
                    preds,
                    db,
                    base,
                    base_plans,
                    delta_plans,
                    guard,
                    &mut changes,
                )?;
                stats.strata_recomputed += 1;
                continue;
            }

            // Phase B: delete the overestimate, then rederive what is
            // base-asserted or still derivable, propagating semi-naively.
            let mut deleted = dset;
            for (pred, fact) in &deleted {
                db.retract_id(*pred, fact);
            }
            let mut order: Vec<(SymId, Fact)> = deleted.iter().cloned().collect();
            order.sort();
            let mut frontier: FxHashMap<SymId, FactBuf> = FxHashMap::default();
            // Base-asserted facts survive outright; the rest are checked
            // for surviving derivations in one batched evaluation per
            // rule (see [`rederive_plan`]). Cascaded rederivations — a
            // candidate supported only through another rederived fact —
            // are picked up by the semi-naive propagation loop below.
            let mut candidates: FxHashMap<SymId, FactBuf> = FxHashMap::default();
            for (pred, fact) in order {
                if base.get(&pred).is_some_and(|b| b.contains(&fact)) {
                    db.insert_if_new_id(pred, &fact);
                    frontier
                        .entry(pred)
                        .or_default()
                        .push_row(fact.iter().copied());
                    deleted.remove(&(pred, fact));
                    stats.rederived += 1;
                } else {
                    candidates
                        .entry(pred)
                        .or_default()
                        .push_row(fact.iter().copied());
                }
            }
            for &ri in rule_idxs {
                let Some(cands) = candidates.get(&rules[ri].head.predicate) else {
                    continue;
                };
                let (plan, scratch) = rederive_plan(delta_plans, rules, db, ri)?;
                ensure_plan_indexes(db, plan);
                let mut out = FactBuf::default();
                plan.eval(db, Some(cands), scratch, &mut out, guard)?;
                for fact in out.rows() {
                    if deleted.remove(&(plan.head_pred, Fact::from(fact))) {
                        db.insert_if_new_id(plan.head_pred, fact);
                        frontier
                            .entry(plan.head_pred)
                            .or_default()
                            .push_row(fact.iter().copied());
                        stats.rederived += 1;
                    }
                }
            }
            while !frontier.is_empty() {
                guard.begin_round(db.fact_count());
                let mut next: FxHashMap<SymId, FactBuf> = FxHashMap::default();
                for &ri in rule_idxs {
                    for (pos, lit) in rules[ri].body.iter().enumerate() {
                        let Literal::Pos(atom) = lit else { continue };
                        let Some(delta) = frontier.get(&atom.predicate) else {
                            continue;
                        };
                        let (plan, scratch) = delta_plan(delta_plans, rules, db, ri, pos)?;
                        ensure_plan_indexes(db, plan);
                        let mut out = FactBuf::default();
                        plan.eval(db, Some(delta), scratch, &mut out, guard)?;
                        for fact in out.rows() {
                            if deleted.remove(&(plan.head_pred, Fact::from(fact))) {
                                db.insert_if_new_id(plan.head_pred, fact);
                                next.entry(plan.head_pred)
                                    .or_default()
                                    .push_row(fact.iter().copied());
                                stats.rederived += 1;
                            }
                        }
                    }
                }
                frontier = next;
            }

            // Phase C: propagate insertions. A fact that comes back after
            // being deleted this commit nets out to no change at all.
            let mut frontier: FxHashMap<SymId, FactBuf> = FxHashMap::default();
            for &q in &body_preds {
                if let Some(delta) = changes.get(&q) {
                    for fact in &delta.ins {
                        frontier
                            .entry(q)
                            .or_default()
                            .push_row(fact.iter().copied());
                    }
                }
            }
            let mut stratum_ins: Vec<(SymId, Fact)> = Vec::new();
            while !frontier.is_empty() {
                guard.begin_round(db.fact_count());
                let mut next: FxHashMap<SymId, FactBuf> = FxHashMap::default();
                for &ri in rule_idxs {
                    for (pos, lit) in rules[ri].body.iter().enumerate() {
                        let Literal::Pos(atom) = lit else { continue };
                        let Some(delta) = frontier.get(&atom.predicate) else {
                            continue;
                        };
                        let (plan, scratch) = delta_plan(delta_plans, rules, db, ri, pos)?;
                        ensure_plan_indexes(db, plan);
                        let mut out = FactBuf::default();
                        plan.eval(db, Some(delta), scratch, &mut out, guard)?;
                        for fact in out.rows() {
                            if db.insert_if_new_id(plan.head_pred, fact) {
                                if !deleted.remove(&(plan.head_pred, Fact::from(fact))) {
                                    stratum_ins.push((plan.head_pred, Fact::from(fact)));
                                }
                                next.entry(plan.head_pred)
                                    .or_default()
                                    .push_row(fact.iter().copied());
                            }
                        }
                    }
                }
                guard.check_db(db.fact_count())?;
                frontier = next;
            }
            for (pred, fact) in deleted {
                changes.entry(pred).or_default().del.push(fact);
            }
            for (pred, fact) in stratum_ins {
                changes.entry(pred).or_default().ins.push(fact);
            }
        }

        for (pred, delta) in &changes {
            if idb.contains(pred) {
                stats.derived_added += delta.ins.len();
                stats.derived_removed += delta.del.len();
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for IncrementalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IncrementalEngine({} rules, {} facts{}{})",
            self.rules.len(),
            self.db.fact_count(),
            if self.in_txn { ", in txn" } else { "" },
            if self.poisoned { ", poisoned" } else { "" },
        )
    }
}

/// Deterministic iteration over a per-predicate delta map.
fn sorted_deltas(map: FxHashMap<SymId, FxHashSet<Fact>>) -> Vec<(SymId, Vec<Fact>)> {
    let mut out: Vec<(SymId, Vec<Fact>)> = map
        .into_iter()
        .map(|(pred, facts)| {
            let mut facts: Vec<Fact> = facts.into_iter().collect();
            facts.sort();
            (pred, facts)
        })
        .collect();
    out.sort_by_key(|&(pred, _)| pred);
    out
}

/// Seal the sorted indexes `plan` probes (lazy index maintenance: the
/// same round-boundary hook the main evaluator uses).
fn ensure_plan_indexes(db: &mut Database, plan: &RulePlan) {
    for &(p, c) in &plan.index_needs {
        db.ensure_index_id(p, c);
    }
}

/// Fetch (compiling on first use) the semi-naive variant of rule `ri`
/// with its delta at body position `pos`, paired with its long-lived
/// executor scratch.
fn delta_plan<'a>(
    plans: &'a mut FxHashMap<(usize, usize), (RulePlan, Scratch)>,
    rules: &[Clause],
    db: &Database,
    ri: usize,
    pos: usize,
) -> Result<(&'a RulePlan, &'a mut Scratch)> {
    use std::collections::hash_map::Entry;
    let (plan, scratch) = match plans.entry((ri, pos)) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(e) => {
            let plan = RulePlan::compile(&rules[ri], Some(pos), db)?;
            let scratch = plan.new_scratch();
            e.insert((plan, scratch))
        }
    };
    Ok((&*plan, scratch))
}

/// Compiled batched rederivation check for one rule, cached under the
/// sentinel position `usize::MAX` (real delta positions index into the
/// body, so they never collide).
///
/// The rule's own head atom is prepended to the body as the delta
/// literal: evaluating `h :- h*, body...` with the deletion candidates
/// as the delta batch returns exactly the candidates with at least one
/// derivation in the current database, in one join pass. This replaces
/// a per-candidate ground compile + eval, which dominated retraction
/// commits once candidate sets reached a few hundred facts.
fn rederive_plan<'a>(
    plans: &'a mut FxHashMap<(usize, usize), (RulePlan, Scratch)>,
    rules: &[Clause],
    db: &Database,
    ri: usize,
) -> Result<(&'a RulePlan, &'a mut Scratch)> {
    use std::collections::hash_map::Entry;
    let (plan, scratch) = match plans.entry((ri, usize::MAX)) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(e) => {
            let rule = &rules[ri];
            let mut body = Vec::with_capacity(rule.body.len() + 1);
            body.push(Literal::Pos(rule.head.clone()));
            body.extend(rule.body.iter().cloned());
            let check = Clause::new(rule.head.clone(), body);
            let plan = RulePlan::compile(&check, Some(0), db)?;
            let scratch = plan.new_scratch();
            e.insert((plan, scratch))
        }
    };
    Ok((&*plan, scratch))
}

/// Recompute one stratum from scratch: reset its predicates to base
/// facts, run a sequential semi-naive fixpoint of its rules, and diff
/// against the old contents so downstream strata see exact deltas.
#[allow(clippy::too_many_arguments)]
fn recompute_stratum(
    rules: &[Clause],
    rule_idxs: &[usize],
    preds: &FxHashSet<SymId>,
    db: &mut Database,
    base: &FxHashMap<SymId, FxHashSet<Fact>>,
    base_plans: &mut FxHashMap<usize, (RulePlan, Scratch)>,
    delta_plans: &mut FxHashMap<(usize, usize), (RulePlan, Scratch)>,
    guard: &EvalGuard,
    changes: &mut FxHashMap<SymId, PredDelta>,
) -> Result<()> {
    let mut sorted_preds: Vec<SymId> = preds.iter().copied().collect();
    sorted_preds.sort_unstable();
    // Snapshots paired positionally with `sorted_preds`, so the diff
    // loop below needs no fallible map lookup.
    let mut old: Vec<FxHashSet<Fact>> = Vec::with_capacity(sorted_preds.len());
    for &pred in &sorted_preds {
        let facts: FxHashSet<Fact> = db
            .relation_id(pred)
            .map(|r| r.iter().collect())
            .unwrap_or_default();
        old.push(facts);
        db.clear_relation_id(pred);
        if let Some(asserted) = base.get(&pred) {
            let mut facts: Vec<&Fact> = asserted.iter().collect();
            facts.sort();
            for fact in facts {
                db.insert_if_new_id(pred, fact);
            }
        }
    }
    // Round 1: full rules; later rounds: semi-naive over the stratum's
    // own new facts.
    guard.begin_round(db.fact_count());
    let mut frontier: FxHashMap<SymId, FactBuf> = FxHashMap::default();
    for &ri in rule_idxs {
        if let std::collections::hash_map::Entry::Vacant(e) = base_plans.entry(ri) {
            let plan = RulePlan::compile(&rules[ri], None, db)?;
            let scratch = plan.new_scratch();
            e.insert((plan, scratch));
        }
        ensure_plan_indexes(db, &base_plans[&ri].0);
        let Some((plan, scratch)) = base_plans.get_mut(&ri) else {
            unreachable!("plan compiled above");
        };
        let plan = &*plan;
        let mut out = FactBuf::default();
        plan.eval(db, None, scratch, &mut out, guard)?;
        for fact in out.rows() {
            if db.insert_if_new_id(plan.head_pred, fact) {
                frontier
                    .entry(plan.head_pred)
                    .or_default()
                    .push_row(fact.iter().copied());
            }
        }
    }
    guard.check_db(db.fact_count())?;
    while !frontier.is_empty() {
        guard.begin_round(db.fact_count());
        let mut next: FxHashMap<SymId, FactBuf> = FxHashMap::default();
        for &ri in rule_idxs {
            for (pos, lit) in rules[ri].body.iter().enumerate() {
                let Literal::Pos(atom) = lit else { continue };
                let Some(delta) = frontier.get(&atom.predicate) else {
                    continue;
                };
                let (plan, scratch) = delta_plan(delta_plans, rules, db, ri, pos)?;
                ensure_plan_indexes(db, plan);
                let mut out = FactBuf::default();
                plan.eval(db, Some(delta), scratch, &mut out, guard)?;
                for fact in out.rows() {
                    if db.insert_if_new_id(plan.head_pred, fact) {
                        next.entry(plan.head_pred)
                            .or_default()
                            .push_row(fact.iter().copied());
                    }
                }
            }
        }
        guard.check_db(db.fact_count())?;
        frontier = next;
    }
    for (&pred, old_facts) in sorted_preds.iter().zip(old) {
        let mut ins: Vec<Fact> = Vec::new();
        if let Some(rel) = db.relation_id(pred) {
            for fact in rel.iter() {
                if !old_facts.contains(&fact) {
                    ins.push(fact);
                }
            }
        }
        let mut del: Vec<Fact> = Vec::new();
        for fact in old_facts {
            if !db.contains_id(pred, &fact) {
                del.push(fact);
            }
        }
        if !ins.is_empty() || !del.is_empty() {
            ins.sort();
            del.sort();
            let entry = changes.entry(pred).or_default();
            entry.ins.extend(ins);
            entry.del.extend(del);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn s(name: &str) -> Const {
        Const::sym(name)
    }

    fn tc_program() -> Program {
        parse_program(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        )
        .expect("program parses")
    }

    /// The incremental database must equal the from-scratch fixpoint of
    /// the surviving base — compare every relation as a sorted fact list.
    fn assert_matches_scratch(engine: &IncrementalEngine) {
        let program = engine.full_program().expect("base renders back");
        let scratch = Engine::new(&program)
            .expect("stratifies")
            .run()
            .expect("evaluates");
        for (pred, rel) in engine.database().relations() {
            let want = scratch
                .relation(pred)
                .map(|r| r.sorted())
                .unwrap_or_default();
            assert_eq!(rel.sorted(), want, "relation {pred} diverged");
        }
        for (pred, rel) in scratch.relations() {
            if engine.database().relation(pred).is_none() {
                assert!(rel.is_empty(), "relation {pred} missing incrementally");
            }
        }
    }

    #[test]
    fn insert_extends_fixpoint() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.insert("edge", vec![s("c"), s("d")]).unwrap();
        let stats = engine.commit().unwrap();
        assert_eq!(stats.edb_inserted, 1);
        assert_eq!(stats.derived_added, 3); // (c,d) (b,d) (a,d)
        assert!(engine.database().contains("path", &[s("a"), s("d")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn retract_cascades_deletions() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.retract("edge", vec![s("b"), s("c")]).unwrap();
        let stats = engine.commit().unwrap();
        assert_eq!(stats.edb_retracted, 1);
        assert_eq!(stats.derived_removed, 2); // path(b,c), path(a,c)
        assert!(engine.database().contains("path", &[s("a"), s("b")]));
        assert!(!engine.database().contains("path", &[s("a"), s("c")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn alternative_support_is_rederived() {
        let program = parse_program(
            "edge(a, b). edge(b, d). edge(a, c). edge(c, d).
             path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.retract("edge", vec![s("b"), s("d")]).unwrap();
        let stats = engine.commit().unwrap();
        // path(a, d) is overestimated as deleted but survives via c.
        assert!(stats.rederived >= 1, "stats: {stats:?}");
        assert!(engine.database().contains("path", &[s("a"), s("d")]));
        assert!(!engine.database().contains("path", &[s("b"), s("d")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn retracting_a_derived_only_fact_is_a_no_op() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        // path(a, c) is derived, never asserted: nothing to retract.
        engine.retract("path", vec![s("a"), s("c")]).unwrap();
        let stats = engine.commit().unwrap();
        assert_eq!(stats.edb_retracted, 0);
        assert!(engine.database().contains("path", &[s("a"), s("c")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn asserted_idb_fact_survives_rule_support_loss() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.insert("path", vec![s("a"), s("c")]).unwrap();
        engine.commit().unwrap();
        engine.begin().unwrap();
        engine.retract("edge", vec![s("b"), s("c")]).unwrap();
        engine.commit().unwrap();
        // Rule support is gone, but the explicit assertion remains.
        assert!(engine.database().contains("path", &[s("a"), s("c")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn negation_stratum_falls_back_to_recompute() {
        let program = parse_program(
            "node(a). node(b). edge(a, b).
             reached(X) :- edge(a, X).
             unreachable(X) :- node(X), not reached(X).",
        )
        .unwrap();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        assert!(engine.database().contains("unreachable", &[s("a")]));
        assert!(!engine.database().contains("unreachable", &[s("b")]));
        engine.begin().unwrap();
        engine.retract("edge", vec![s("a"), s("b")]).unwrap();
        let stats = engine.commit().unwrap();
        assert!(stats.strata_recomputed >= 1, "stats: {stats:?}");
        assert!(engine.database().contains("unreachable", &[s("b")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn threshold_fallback_matches_scratch() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program)
            .unwrap()
            .with_fallback_threshold(0); // every deletion cascades past it
        engine.begin().unwrap();
        engine.retract("edge", vec![s("a"), s("b")]).unwrap();
        let stats = engine.commit().unwrap();
        assert!(stats.strata_recomputed >= 1);
        assert!(!engine.database().contains("path", &[s("a"), s("c")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn transaction_protocol_is_enforced() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        assert!(matches!(
            engine.commit(),
            Err(DatalogError::NoActiveTransaction)
        ));
        assert!(matches!(
            engine.insert("edge", vec![s("x"), s("y")]),
            Err(DatalogError::NoActiveTransaction)
        ));
        engine.begin().unwrap();
        assert!(matches!(
            engine.begin(),
            Err(DatalogError::TransactionActive)
        ));
        engine.rollback().unwrap();
        assert!(matches!(
            engine.rollback(),
            Err(DatalogError::NoActiveTransaction)
        ));
    }

    #[test]
    fn rollback_discards_staged_updates() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.insert("edge", vec![s("c"), s("d")]).unwrap();
        engine.rollback().unwrap();
        engine.begin().unwrap();
        let stats = engine.commit().unwrap();
        assert_eq!(stats, CommitStats::default());
        assert!(!engine.database().contains("edge", &[s("c"), s("d")]));
    }

    #[test]
    fn arity_mismatch_is_rejected_at_stage_time() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        let err = engine.insert("edge", vec![s("a")]).unwrap_err();
        assert!(matches!(
            err,
            DatalogError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        // Novel predicates fix their arity at the first staged op.
        engine.insert("tag", vec![s("a")]).unwrap();
        let err = engine.insert("tag", vec![s("a"), s("b")]).unwrap_err();
        assert!(matches!(
            err,
            DatalogError::ArityMismatch {
                expected: 1,
                found: 2,
                ..
            }
        ));
    }

    #[test]
    fn budget_trip_poisons_until_recover() {
        let mut src = String::new();
        for i in 0..40 {
            src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).\n");
        let program = parse_program(&src).unwrap();
        let engine = IncrementalEngine::new(&program).unwrap();
        let before = engine.database().fact_count();
        let mut engine = engine.with_fact_limit(before); // any growth trips
        engine.begin().unwrap();
        engine.insert("edge", vec![s("n41"), s("n42")]).unwrap();
        let err = engine.commit().unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }), "{err}");
        assert!(engine.is_poisoned());
        assert!(matches!(engine.begin(), Err(DatalogError::EnginePoisoned)));
        // The failed transaction's base changes were rolled back.
        let mut engine = engine.with_fact_limit(10_000_000);
        engine.recover().unwrap();
        assert!(!engine.is_poisoned());
        assert_eq!(engine.database().fact_count(), before);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn novel_predicates_round_trip() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.insert("tag", vec![s("a")]).unwrap();
        engine.commit().unwrap();
        assert!(engine.database().contains("tag", &[s("a")]));
        engine.begin().unwrap();
        engine.retract("tag", vec![s("a")]).unwrap();
        engine.commit().unwrap();
        assert!(!engine.database().contains("tag", &[s("a")]));
    }

    #[test]
    fn mixed_commit_nets_out() {
        let program = tc_program();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        engine.begin().unwrap();
        engine.retract("edge", vec![s("a"), s("b")]).unwrap();
        engine.insert("edge", vec![s("a"), s("b")]).unwrap(); // cancels
        engine.insert("edge", vec![s("c"), s("d")]).unwrap();
        let stats = engine.commit().unwrap();
        assert_eq!(stats.edb_retracted, 0);
        assert_eq!(stats.edb_inserted, 1);
        assert!(engine.database().contains("path", &[s("a"), s("d")]));
        assert_matches_scratch(&engine);
    }

    // ---- no-panic regressions: programs that bypassed validation hit
    // the engine's internal invariants as typed errors, never aborts.

    #[test]
    fn non_ground_fact_clause_is_a_typed_error() {
        // `p(X).` is rejected by `check_safety`, so it can only reach
        // the engine through the unchecked test constructor — exactly
        // the adversarial shape the old `expect()` panicked on.
        let clause = Clause::fact(Atom::new("p", vec![Term::var("X")]));
        let program = Program::from_clauses_unchecked(vec![clause], &[]);
        let err = IncrementalEngine::new(&program).unwrap_err();
        match err {
            DatalogError::Internal { detail } => {
                assert!(detail.contains("non-ground head"), "{detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn unstratified_head_predicate_is_a_typed_error() {
        // A rule whose head predicate is hidden from the arity table is
        // invisible to `stratify()`; its stratum lookup must fail as a
        // typed error rather than the old `expect()` panic.
        let rule = Clause::new(
            Atom::new("ghost", vec![Term::var("X")]),
            vec![Literal::Pos(Atom::new("p", vec![Term::var("X")]))],
        );
        let base = Clause::fact(Atom::new("p", vec![Term::sym("a")]));
        let program = Program::from_clauses_unchecked(vec![base, rule], &["ghost"]);
        let err = IncrementalEngine::new(&program).unwrap_err();
        match err {
            DatalogError::Internal { detail } => {
                assert!(detail.contains("ghost"), "{detail}");
                assert!(detail.contains("stratification"), "{detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_program_commits_recompute_and_match_scratch() {
        let program = parse_program(
            "score(alice, 3). score(alice, 5). score(bob, 7).
             total(P, sum(S)) :- score(P, S).",
        )
        .unwrap();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        assert!(engine
            .database()
            .contains("total", &[s("alice"), Const::int(8)]));
        engine.begin().unwrap();
        engine
            .insert("score", vec![s("alice"), Const::int(10)])
            .unwrap();
        let stats = engine.commit().unwrap();
        assert!(stats.strata_recomputed >= 1, "stats: {stats:?}");
        assert!(engine
            .database()
            .contains("total", &[s("alice"), Const::int(18)]));
        assert!(!engine
            .database()
            .contains("total", &[s("alice"), Const::int(8)]));
        engine.begin().unwrap();
        engine
            .retract("score", vec![s("bob"), Const::int(7)])
            .unwrap();
        engine.commit().unwrap();
        assert!(engine.database().relation("total").unwrap().len() == 1);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn algo_program_commits_recompute_and_match_scratch() {
        let program = parse_program(
            "edge(a, b). edge(b, c).
             reach(X, Y) :- @bfs(edge, X, Y).",
        )
        .unwrap();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        assert!(engine.database().contains("reach", &[s("a"), s("c")]));
        engine.begin().unwrap();
        engine.insert("edge", vec![s("c"), s("d")]).unwrap();
        let stats = engine.commit().unwrap();
        assert!(stats.derived_added >= 3, "stats: {stats:?}"); // a→d, b→d, c→d (+ @bfs copies)
        assert!(engine.database().contains("reach", &[s("a"), s("d")]));
        engine.begin().unwrap();
        engine.retract("edge", vec![s("a"), s("b")]).unwrap();
        engine.commit().unwrap();
        assert!(!engine.database().contains("reach", &[s("a"), s("c")]));
        assert_matches_scratch(&engine);
    }

    #[test]
    fn recompute_fallback_diffs_without_snapshot_lookup() {
        // The recompute fallback's old-snapshot diff no longer has a
        // fallible map lookup; pin the fallback path (negation forces
        // it) producing exact deltas over a retract.
        let program = parse_program(
            "edge(a, b). edge(b, c). node(a). node(b). node(c).
             path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             isolated(X) :- node(X), not path(a, X).",
        )
        .expect("program parses");
        let mut engine = IncrementalEngine::new(&program).unwrap();
        assert!(engine.database().contains("isolated", &[s("a")]));
        assert!(!engine.database().contains("isolated", &[s("c")]));
        engine.begin().unwrap();
        engine.retract("edge", vec![s("b"), s("c")]).unwrap();
        engine.commit().unwrap();
        assert!(engine.database().contains("isolated", &[s("c")]));
        assert_matches_scratch(&engine);
    }
}
