//! Epoch-versioned database generations for snapshot-isolated readers.
//!
//! A [`GenerationStore`] holds the latest committed [`Database`] behind
//! an epoch counter. Readers call [`GenerationStore::snapshot`] to pin
//! the current generation — an O(1) `Arc` clone that never blocks on a
//! writer and keeps the generation alive for as long as the handle
//! lives. Writers build the *next* generation copy-on-write (cloning a
//! `Database` shares all relation segments; see
//! [`Database::clone`](Database)) and [`publish`](GenerationStore::publish)
//! it atomically: a brief pointer swap under a write lock that readers
//! only contend on for the duration of one `Arc` clone.
//!
//! The store deliberately knows nothing about transactions or rule
//! evaluation — it is the narrow waist between the incremental
//! maintenance layer (which produces generations) and the session layer
//! (which hands out pinned snapshots per reader).

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::storage::Database;

/// A pinned, immutable view of one published database generation.
///
/// Cloning a snapshot is O(1) and snapshots are `Send + Sync`: reader
/// threads can hold them across arbitrary query work while writers
/// publish newer generations. Deref yields the underlying [`Database`],
/// so anything that queries a `&Database` (e.g.
/// [`run_query`](crate::run_query)) works on a snapshot unchanged.
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    db: Arc<Database>,
}

impl Snapshot {
    /// The epoch at which this generation was published. Epoch 0 is the
    /// store's initial database; each publish increments by one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The shared handle to the pinned database, for callers that need
    /// to keep the generation alive independently of the snapshot.
    pub fn shared(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

/// The epoch-versioned store of published database generations.
///
/// One writer at a time builds the next generation (the store does not
/// arbitrate writers — the session layer does) and publishes it here;
/// any number of readers pin generations concurrently.
#[derive(Debug)]
pub struct GenerationStore {
    current: RwLock<Snapshot>,
}

/// Read the lock even if a panicking writer poisoned it: the guarded
/// value is only ever replaced wholesale (no torn intermediate states),
/// so the last published generation is always consistent.
fn read_current(lock: &RwLock<Snapshot>) -> RwLockReadGuard<'_, Snapshot> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_current(lock: &RwLock<Snapshot>) -> RwLockWriteGuard<'_, Snapshot> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl GenerationStore {
    /// Create a store whose epoch-0 generation is `db`.
    pub fn new(db: Database) -> Self {
        Self::with_epoch(0, db)
    }

    /// Create a store whose initial generation is `db` at `epoch`.
    ///
    /// Session layers that maintain one store per reader clearance use
    /// this to align a store created mid-stream (the first reader at a
    /// level may open after many commits) with the global commit count,
    /// so equal epochs across stores name the same committed state.
    pub fn with_epoch(epoch: u64, db: Database) -> Self {
        GenerationStore {
            current: RwLock::new(Snapshot {
                epoch,
                db: Arc::new(db),
            }),
        }
    }

    /// Pin the current generation. Never blocks on generation
    /// construction — only on the pointer swap inside
    /// [`publish`](GenerationStore::publish), which is O(1).
    pub fn snapshot(&self) -> Snapshot {
        read_current(&self.current).clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        read_current(&self.current).epoch
    }

    /// Publish `db` as the next generation and return its epoch.
    ///
    /// Existing snapshots keep their pinned generation; only snapshots
    /// taken after this call observe the new one.
    pub fn publish(&self, db: Database) -> u64 {
        // Allocate the Arc outside the critical section; the lock is
        // held only for the swap.
        let db = Arc::new(db);
        let mut current = write_current(&self.current);
        current.epoch += 1;
        current.db = db;
        current.epoch
    }

    /// Publish `db` at an explicit `epoch` (which may repeat or skip
    /// values). Session layers use this to re-align a store after
    /// healing a parked level: the epoch must track the *global* commit
    /// count, not this store's publish count.
    pub fn publish_at(&self, epoch: u64, db: Database) {
        let db = Arc::new(db);
        let mut current = write_current(&self.current);
        current.epoch = epoch;
        current.db = db;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Const;

    fn db_with(facts: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (p, a) in facts {
            db.insert(p, vec![Const::sym(a)]);
        }
        db
    }

    #[test]
    fn snapshot_pins_generation_across_publish() {
        let store = GenerationStore::new(db_with(&[("p", "a")]));
        let pinned = store.snapshot();
        assert_eq!(pinned.epoch(), 0);

        let mut next = pinned.database().clone();
        next.insert("p", vec![Const::sym("b")]);
        let epoch = store.publish(next);
        assert_eq!(epoch, 1);
        assert_eq!(store.epoch(), 1);

        // The old snapshot still sees exactly the old generation.
        assert_eq!(pinned.fact_count(), 1);
        assert!(!pinned.contains("p", &[Const::sym("b")]));
        // A fresh snapshot sees the new one.
        let fresh = store.snapshot();
        assert_eq!(fresh.epoch(), 1);
        assert!(fresh.contains("p", &[Const::sym("b")]));
    }

    #[test]
    fn with_epoch_aligns_a_late_store() {
        let store = GenerationStore::with_epoch(7, db_with(&[("p", "a")]));
        assert_eq!(store.epoch(), 7);
        assert_eq!(store.snapshot().epoch(), 7);
        assert_eq!(store.publish(db_with(&[("p", "b")])), 8);
    }

    #[test]
    fn cow_clone_shares_untouched_relations() {
        let base = db_with(&[("p", "a"), ("q", "a")]);
        let mut next = base.clone();
        next.insert("p", vec![Const::sym("b")]);
        // `q` is untouched: both databases reference the same segment.
        assert!(std::ptr::eq(
            base.relation("q").expect("q exists"),
            next.relation("q").expect("q exists"),
        ));
        // `p` was detached by the write.
        assert!(!std::ptr::eq(
            base.relation("p").expect("p exists"),
            next.relation("p").expect("p exists"),
        ));
        assert_eq!(base.relation("p").expect("p exists").len(), 1);
        assert_eq!(next.relation("p").expect("p exists").len(), 2);
    }

    #[test]
    fn noop_retract_does_not_detach_segment() {
        let base = db_with(&[("p", "a")]);
        let mut next = base.clone();
        assert!(!next.retract("p", &[Const::sym("zzz")]));
        assert!(std::ptr::eq(
            base.relation("p").expect("p exists"),
            next.relation("p").expect("p exists"),
        ));
    }

    #[test]
    fn snapshots_are_send_sync_and_cross_threads() {
        let store = Arc::new(GenerationStore::new(db_with(&[("p", "a")])));
        let snap = store.snapshot();
        let handle = std::thread::spawn(move || snap.fact_count());
        let mut next = store.snapshot().database().clone();
        next.insert("p", vec![Const::sym("b")]);
        store.publish(next);
        assert_eq!(handle.join().expect("reader thread"), 1);
        assert_eq!(store.snapshot().fact_count(), 2);
    }
}
