//! Atoms, literals, and comparison built-ins.

use std::cmp::Ordering;
use std::fmt;

use crate::term::{Const, SymId, Term};
use crate::{DatalogError, Result};

/// A predicate atom `p(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The interned predicate symbol.
    pub predicate: SymId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(predicate: impl AsRef<str>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: SymId::intern(predicate.as_ref()),
            terms,
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Iterate over the variable names occurring in the atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// The tuple of constants, if ground.
    pub fn as_fact(&self) -> Option<Vec<Const>> {
        self.terms
            .iter()
            .map(|t| t.as_const().cloned())
            .collect::<Option<Vec<_>>>()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Algorithm-call atoms carry the call syntax in their predicate
        // name (`@bfs(edge)`); splice the argument terms back inside the
        // parentheses so the rendered form re-parses.
        let name = self.predicate.as_str();
        if name.starts_with('@') {
            if let Some(open) = name.strip_suffix(')') {
                write!(f, "{open}")?;
                for t in &self.terms {
                    write!(f, ", {t}")?;
                }
                return write!(f, ")");
            }
        }
        write!(f, "{}", self.predicate)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Comparison operators available as built-in body literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=` — term equality (after substitution).
    Eq,
    /// `!=` — term disequality.
    Ne,
    /// `<` — strict order within a constant kind.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on two ground constants.
    ///
    /// `=`/`!=` compare any constants; the order operators require both
    /// operands to be of the same kind (two symbols or two integers) and
    /// return [`DatalogError::IncomparableTerms`] otherwise.
    pub fn eval(self, left: &Const, right: &Const) -> Result<bool> {
        match self {
            CmpOp::Eq => Ok(left == right),
            CmpOp::Ne => Ok(left != right),
            _ => {
                let ord = left
                    .try_cmp(right)
                    .ok_or_else(|| DatalogError::IncomparableTerms {
                        left: left.to_string(),
                        right: right.to_string(),
                    })?;
                Ok(match self {
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
                })
            }
        }
    }

    /// The textual spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Arithmetic operators for `T = X op Y` built-ins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Remainder.
    Rem,
}

impl ArithOp {
    /// Apply the operator to two integers, checking overflow and
    /// division by zero.
    pub fn eval(self, lhs: i64, rhs: i64) -> Result<i64> {
        let out = match self {
            ArithOp::Add => lhs.checked_add(rhs),
            ArithOp::Sub => lhs.checked_sub(rhs),
            ArithOp::Mul => lhs.checked_mul(rhs),
            ArithOp::Div => lhs.checked_div(rhs),
            ArithOp::Rem => lhs.checked_rem(rhs),
        };
        out.ok_or(DatalogError::ArithmeticFailure {
            op: self.symbol(),
            lhs,
            rhs,
        })
    }

    /// The textual spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "mod",
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A body literal: a positive atom, a negated atom, or a comparison.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A positive relational literal.
    Pos(Atom),
    /// A negated relational literal (`not p(…)`). Under stratified
    /// negation with free variables, the reading is
    /// `¬∃(free vars) p(…)` at the point all other variables are bound.
    Neg(Atom),
    /// A comparison built-in `lhs op rhs`.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// An arithmetic built-in `target = lhs op rhs` over integers; binds
    /// `target` if it is an unbound variable.
    Arith {
        /// The result term (bound → checked; free variable → bound).
        target: Term,
        /// Left operand (must be bound at evaluation time).
        lhs: Term,
        /// The operator.
        op: ArithOp,
        /// Right operand (must be bound at evaluation time).
        rhs: Term,
    },
}

impl Literal {
    /// The relational atom, if this is a `Pos` or `Neg` literal.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp { .. } | Literal::Arith { .. } => None,
        }
    }

    /// Whether this literal is a positive relational literal.
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    /// Iterate over variable names occurring in the literal.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.variables().collect(),
            Literal::Cmp { lhs, rhs, .. } => lhs.as_var().into_iter().chain(rhs.as_var()).collect(),
            Literal::Arith {
                target, lhs, rhs, ..
            } => target
                .as_var()
                .into_iter()
                .chain(lhs.as_var())
                .chain(rhs.as_var())
                .collect(),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Literal::Arith {
                target,
                lhs,
                op,
                rhs,
            } => {
                write!(f, "{target} = {lhs} {op} {rhs}")
            }
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
pub(crate) fn atom(pred: &str, terms: Vec<Term>) -> Atom {
    Atom::new(pred, terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display() {
        let a = atom("p", vec![Term::var("X"), Term::sym("mars"), Term::int(3)]);
        assert_eq!(a.to_string(), "p(X, mars, 3)");
        assert_eq!(atom("halt", vec![]).to_string(), "halt");
    }

    #[test]
    fn atom_groundness_and_fact() {
        let g = atom("p", vec![Term::sym("a"), Term::int(1)]);
        assert!(g.is_ground());
        assert_eq!(g.as_fact().unwrap(), vec![Const::sym("a"), Const::int(1)]);
        let ng = atom("p", vec![Term::var("X")]);
        assert!(!ng.is_ground());
        assert!(ng.as_fact().is_none());
    }

    #[test]
    fn cmp_eval_orders() {
        use CmpOp::*;
        let (a, b) = (Const::int(1), Const::int(2));
        assert!(Lt.eval(&a, &b).unwrap());
        assert!(Le.eval(&a, &a).unwrap());
        assert!(Gt.eval(&b, &a).unwrap());
        assert!(Ge.eval(&b, &b).unwrap());
        assert!(Eq.eval(&a, &a).unwrap());
        assert!(Ne.eval(&a, &b).unwrap());
    }

    #[test]
    fn cmp_eq_ne_cross_kind_ok() {
        let (a, b) = (Const::int(1), Const::sym("one"));
        assert!(!CmpOp::Eq.eval(&a, &b).unwrap());
        assert!(CmpOp::Ne.eval(&a, &b).unwrap());
    }

    #[test]
    fn cmp_order_cross_kind_errors() {
        let (a, b) = (Const::int(1), Const::sym("one"));
        assert!(CmpOp::Lt.eval(&a, &b).is_err());
    }

    #[test]
    fn literal_variables() {
        let l = Literal::Cmp {
            op: CmpOp::Ne,
            lhs: Term::var("X"),
            rhs: Term::sym("c"),
        };
        assert_eq!(l.variables(), vec!["X"]);
        let l = Literal::Neg(atom("p", vec![Term::var("A"), Term::var("B")]));
        assert_eq!(l.variables(), vec!["A", "B"]);
        assert!(!l.is_positive());
    }

    #[test]
    fn literal_display() {
        let l = Literal::Neg(atom("p", vec![Term::var("X")]));
        assert_eq!(l.to_string(), "not p(X)");
        let c = Literal::Cmp {
            op: CmpOp::Le,
            lhs: Term::int(1),
            rhs: Term::var("Y"),
        };
        assert_eq!(c.to_string(), "1 <= Y");
    }
}
