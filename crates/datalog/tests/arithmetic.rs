//! Tests for the arithmetic built-ins (`T = X op Y`), which CORAL offers
//! and our substitute therefore provides.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_datalog::{parse_clause, parse_program, Const, DatalogError, Engine};

fn run(src: &str) -> multilog_datalog::Database {
    let p = parse_program(src).unwrap();
    Engine::new(&p).unwrap().run().unwrap()
}

#[test]
fn addition_binds_target() {
    let db = run("n(1). n(2). n(3).\
         succ(X, Y) :- n(X), Y = X + 1.");
    let succ = db.relation("succ").unwrap();
    assert_eq!(succ.len(), 3);
    assert!(succ.contains(&[Const::int(3), Const::int(4)]));
}

#[test]
fn all_operators() {
    let db = run("n(7).\
         ops(A, S, M, D, R) :- n(X), A = X + 3, S = X - 3, M = X * 3, D = X / 3, R = X mod 3.");
    let r = db.relation("ops").unwrap();
    assert!(r.contains(&[
        Const::int(10),
        Const::int(4),
        Const::int(21),
        Const::int(2),
        Const::int(1)
    ]));
}

#[test]
fn bound_target_acts_as_filter() {
    let db = run("n(2). n(3). n(4).\
         pair(X, Y) :- n(X), n(Y), Y = X + 1.");
    assert_eq!(db.relation("pair").unwrap().len(), 2);
}

#[test]
fn constant_target() {
    let db = run("n(2). n(5).\
         seven(X, Y) :- n(X), n(Y), 7 = X + Y.");
    let r = db.relation("seven").unwrap();
    assert_eq!(r.len(), 2); // (2,5) and (5,2)
}

#[test]
fn recursion_with_arithmetic_counts() {
    // count down from 5 to 0.
    let db = run("count(5).\
         count(Y) :- count(X), X > 0, Y = X - 1.");
    assert_eq!(db.relation("count").unwrap().len(), 6);
    assert!(db.contains("count", &[Const::int(0)]));
}

#[test]
fn division_by_zero_errors() {
    let p = parse_program(
        "n(4). n(0).\
         d(Z) :- n(X), n(Y), Z = X / Y.",
    )
    .unwrap();
    let err = Engine::new(&p).unwrap().run().unwrap_err();
    assert!(matches!(err, DatalogError::ArithmeticFailure { .. }));
}

#[test]
fn overflow_errors() {
    let p = parse_program(&format!("n({}). big(Z) :- n(X), Z = X * 2.", i64::MAX)).unwrap();
    let err = Engine::new(&p).unwrap().run().unwrap_err();
    assert!(matches!(err, DatalogError::ArithmeticFailure { .. }));
}

#[test]
fn symbol_operand_errors() {
    let p = parse_program("n(foo). d(Z) :- n(X), Z = X + 1.").unwrap();
    let err = Engine::new(&p).unwrap().run().unwrap_err();
    assert!(matches!(err, DatalogError::IncomparableTerms { .. }));
}

#[test]
fn unbound_operand_rejected_statically() {
    let err = parse_program("p(X) :- q(X), Y = Z + 1. q(1).").unwrap_err();
    assert!(matches!(err, DatalogError::UnsafeVariable { .. }));
}

#[test]
fn target_binds_head_variable() {
    // The target is a legitimate binder for head safety.
    let c = parse_clause("p(Y) :- q(X), Y = X + 1.").unwrap();
    c.check_safety().unwrap();
}

#[test]
fn chained_arithmetic_binds_left_to_right() {
    let db = run("n(2).\
         chain(A, B) :- n(X), A = X * 10, B = A + 1.");
    assert!(db.contains("chain", &[Const::int(20), Const::int(21)]));
}

#[test]
fn later_cmp_can_use_target() {
    let db = run("n(1). n(5).\
         big(X) :- n(X), Y = X * 2, Y > 5.");
    let r = db.relation("big").unwrap();
    assert_eq!(r.len(), 1);
    assert!(r.contains(&[Const::int(5)]));
}

#[test]
fn display_roundtrips() {
    let c = parse_clause("p(Y) :- q(X), Y = X - 1.").unwrap();
    assert_eq!(c.to_string(), "p(Y) :- q(X), Y = X - 1.");
    let c2 = parse_clause(&c.to_string()).unwrap();
    assert_eq!(c, c2);
    let c = parse_clause("p(Y) :- q(X), Y = X mod 2.").unwrap();
    assert_eq!(parse_clause(&c.to_string()).unwrap(), c);
}

#[test]
fn negative_literals_still_lex() {
    let db = run("n(-5). pos(Y) :- n(X), Y = 0 - X.");
    assert!(db.contains("pos", &[Const::int(5)]));
}

#[test]
fn subtraction_vs_negative_literal_disambiguation() {
    // `X - 3` is subtraction; `p(-3)` is a negative literal.
    let db = run("n(10). m(-3).\
         d(Y) :- n(X), Y = X - 3.\
         keep(X) :- m(X).");
    assert!(db.contains("d", &[Const::int(7)]));
    assert!(db.contains("keep", &[Const::int(-3)]));
}
