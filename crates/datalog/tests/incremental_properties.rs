//! Property tests for the incremental maintenance subsystem: after any
//! random interleaving of insert/retract transactions, the maintained
//! database must equal the from-scratch fixpoint over the surviving
//! base facts — through positive recursion and across negation strata
//! (where commits fall back to per-stratum recomputation).

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;

use proptest::prelude::*;

use multilog_datalog::{parse_program, Const, Database, Engine, IncrementalEngine, Program};

/// Rules spanning three strata: recursive closure, negation over the
/// closure, and negation over that. `edge` and `b` are the churned base
/// relations.
const RULES: &str = "path(X, Y) :- edge(X, Y).\n\
                     path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                     node(X) :- edge(X, Y).\n\
                     node(Y) :- edge(X, Y).\n\
                     sink(X) :- node(X), not edge(X, Y).\n\
                     unreach(X, Y) :- node(X), node(Y), not path(X, Y).\n\
                     lonely(X) :- b(X), not node(X).\n";

/// One staged update: `(on_edge, insert, x, y)`. `y` is ignored for the
/// unary relation `b`.
type Update = (bool, bool, usize, usize);

/// A transaction history: each inner vector is one `begin`…`commit`.
fn arb_history() -> impl Strategy<Value = Vec<Vec<Update>>> {
    let update = (any::<bool>(), any::<bool>(), 0usize..5, 0usize..5);
    proptest::collection::vec(proptest::collection::vec(update, 1..5), 1..8)
}

/// Initial seed facts so the engine materializes a non-trivial fixpoint
/// before the first commit.
fn seed_src() -> String {
    format!("edge(n0, n1).\nedge(n1, n2).\nb(n0).\nb(n3).\n{RULES}")
}

/// The reference model: the surviving base facts as plain sets.
#[derive(Default)]
struct BaseModel {
    edges: BTreeSet<(usize, usize)>,
    bs: BTreeSet<usize>,
}

impl BaseModel {
    fn seeded() -> Self {
        BaseModel {
            edges: [(0, 1), (1, 2)].into(),
            bs: [0, 3].into(),
        }
    }

    /// The equivalent from-scratch program: rules plus surviving base.
    fn program(&self) -> Program {
        let mut src = String::new();
        for &(x, y) in &self.edges {
            src.push_str(&format!("edge(n{x}, n{y}).\n"));
        }
        for &x in &self.bs {
            src.push_str(&format!("b(n{x}).\n"));
        }
        src.push_str(RULES);
        parse_program(&src).expect("model program is valid")
    }
}

fn all_facts(db: &Database) -> Vec<(String, Box<[Const]>)> {
    let mut out = Vec::new();
    for (pred, rel) in db.relations() {
        for f in rel.sorted() {
            out.push((pred.to_owned(), f));
        }
    }
    out.sort();
    out
}

/// Apply one transaction to both the engine and the set model.
fn apply_commit(engine: &mut IncrementalEngine, model: &mut BaseModel, commit: &[Update]) {
    engine.begin().unwrap();
    for &(on_edge, insert, x, y) in commit {
        if on_edge {
            let fact = vec![Const::sym(format!("n{x}")), Const::sym(format!("n{y}"))];
            if insert {
                engine.insert("edge", fact).unwrap();
                model.edges.insert((x, y));
            } else {
                engine.retract("edge", fact).unwrap();
                model.edges.remove(&(x, y));
            }
        } else {
            let fact = vec![Const::sym(format!("n{x}"))];
            if insert {
                engine.insert("b", fact).unwrap();
                model.bs.insert(x);
            } else {
                engine.retract("b", fact).unwrap();
                model.bs.remove(&x);
            }
        }
    }
    engine.commit().unwrap();
}

/// The maintained database must equal the from-scratch fixpoint of the
/// model's surviving base, with empty relations ignored (retractions can
/// drain a relation the scratch program never mentions).
fn assert_matches_model(
    engine: &IncrementalEngine,
    model: &BaseModel,
) -> Result<(), TestCaseError> {
    let scratch = Engine::new(&model.program()).unwrap().run().unwrap();
    prop_assert_eq!(all_facts(engine.database()), all_facts(&scratch));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_scratch_after_every_commit(history in arb_history()) {
        let program = parse_program(&seed_src()).unwrap();
        let mut engine = IncrementalEngine::new(&program).unwrap();
        let mut model = BaseModel::seeded();
        for commit in &history {
            apply_commit(&mut engine, &mut model, commit);
            assert_matches_model(&engine, &model)?;
        }
    }

    #[test]
    fn threaded_incremental_equals_scratch(history in arb_history()) {
        let program = parse_program(&seed_src()).unwrap();
        let mut engine = IncrementalEngine::new(&program)
            .unwrap()
            .with_threads(4);
        // Re-materialize under the threaded configuration so the
        // parallel evaluation path is exercised too.
        engine.recover().unwrap();
        let mut model = BaseModel::seeded();
        for commit in &history {
            apply_commit(&mut engine, &mut model, commit);
        }
        assert_matches_model(&engine, &model)?;
    }

    #[test]
    fn low_fallback_threshold_equals_scratch(history in arb_history()) {
        // Threshold 0 forces the per-stratum recompute fallback on every
        // deletion, pinning the fallback path against the same oracle.
        let program = parse_program(&seed_src()).unwrap();
        let mut engine = IncrementalEngine::new(&program)
            .unwrap()
            .with_fallback_threshold(0);
        let mut model = BaseModel::seeded();
        for commit in &history {
            apply_commit(&mut engine, &mut model, commit);
            assert_matches_model(&engine, &model)?;
        }
    }
}
