//! Datalog parser robustness: arbitrary input never panics, and
//! arithmetic/negation programs survive print-reparse.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_datalog::{parse_clause, parse_program, parse_query};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_input_never_panics(src in "\\PC*") {
        let _ = parse_program(&src);
        let _ = parse_query(&src);
        let _ = parse_clause(&src);
    }

    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("p"), Just("q"), Just("not"), Just("mod"), Just("X"),
            Just("Y"), Just("_"), Just("("), Just(")"), Just(","),
            Just("."), Just(":-"), Just("?-"), Just("="), Just("!="),
            Just("<"), Just("<="), Just(">"), Just(">="), Just("+"),
            Just("-"), Just("*"), Just("/"), Just("7"), Just("-3"),
            Just("\"str\""),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _ = parse_program(&src);
        let _ = parse_query(&src);
    }

    #[test]
    fn print_reparse_fixpoint(
        a in "[a-e]", b in "[a-e]", n in -20i64..20,
    ) {
        let src = format!(
            "p(X, Z) :- q(X, {a}), not r(X, {b}), Z = X + {n}, Z >= {n}."
        );
        let parsed = parse_clause(&src).unwrap();
        let reparsed = parse_clause(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
