//! Model-checking tests for the `GenerationStore` publish/pin race.
//!
//! The store's contract is a single linearization point per operation:
//! `publish` replaces the `(epoch, database)` pair wholesale under the
//! write lock, and `snapshot` clones the pair under the read lock. The
//! races worth checking are therefore (a) a reader pinning while a
//! writer swaps — the snapshot must be one published generation, never a
//! torn `(old epoch, new db)` hybrid — and (b) successive pins racing
//! several swaps — the epochs a reader observes must never go backwards.
//!
//! Two complementary checks:
//!
//! - A deterministic sweep over operation interleavings (loom-style
//!   schedule enumeration, but at linearization-point granularity, so it
//!   needs no instrumented synchronization primitives). Every schedule
//!   of `P` publishes and `R` reads runs against a real store; the
//!   default build sweeps a bounded sample of schedules, and the opt-in
//!   `loom` feature (`--features loom`) sweeps every one of them.
//! - A randomized threaded stress run exercising the real lock/`Arc`
//!   machinery under genuine parallelism, with the same invariants
//!   asserted from each reader thread.
//!
//! Each published generation is tagged with a fact encoding its epoch,
//! so "snapshot content matches snapshot epoch" is directly observable.

use std::sync::{Arc, Barrier};
use std::thread;

use multilog_datalog::{Const, Database, GenerationStore, Snapshot};

/// A database whose `gen` relation holds exactly the tag for `epoch`.
fn tagged(epoch: u64) -> Database {
    let mut db = Database::new();
    db.insert(
        "gen",
        vec![Const::Int(i64::try_from(epoch).expect("small epoch"))],
    );
    db
}

/// The epoch a [`tagged`] database claims to be, read back from its
/// `gen` relation.
fn tag_of(db: &Database) -> u64 {
    let rel = db.relation("gen").expect("tag relation present");
    let mut tags = rel.iter();
    let row = tags.next().expect("tag fact present");
    assert!(tags.next().is_none(), "torn generation: {} tags", rel.len());
    match row[0] {
        Const::Int(i) => u64::try_from(i).expect("non-negative tag"),
        ref other => panic!("unexpected tag {other:?}"),
    }
}

/// Assert the two pin invariants on one observed snapshot: the content
/// matches the epoch, and the epoch did not run backwards.
fn check_pin(snap: &Snapshot, last_seen: &mut u64) {
    assert_eq!(
        tag_of(snap.database()),
        snap.epoch(),
        "snapshot pinned a hybrid of two generations"
    );
    assert!(
        snap.epoch() >= *last_seen,
        "reader observed epoch {} after {}",
        snap.epoch(),
        *last_seen
    );
    *last_seen = snap.epoch();
}

// ---------------------------------------------------------------------
// Deterministic schedule sweep
// ---------------------------------------------------------------------

/// Run one schedule: a sequence of thread choices, where thread 0 is the
/// publisher (its k-th step publishes the generation tagged k+1) and
/// threads 1..=readers each pin a snapshot per step. Operations execute
/// in schedule order — every interleaving of linearization points is
/// reachable this way because each store operation is a single critical
/// section.
fn run_schedule(schedule: &[usize], readers: usize) {
    let store = GenerationStore::new(tagged(0));
    let mut published = 0;
    let mut last_seen = vec![0u64; readers];
    for &tid in schedule {
        if tid == 0 {
            published += 1;
            let epoch = store.publish(tagged(published));
            assert_eq!(epoch, published, "publish must advance by one");
        } else {
            check_pin(&store.snapshot(), &mut last_seen[tid - 1]);
        }
    }
    assert_eq!(store.epoch(), published);
}

/// Enumerate every distinct schedule of `steps[t]` operations per thread
/// (multiset permutations), calling `f` on each.
fn for_each_schedule(steps: &mut [usize], prefix: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if steps.iter().all(|&s| s == 0) {
        f(prefix);
        return;
    }
    for t in 0..steps.len() {
        if steps[t] == 0 {
            continue;
        }
        steps[t] -= 1;
        prefix.push(t);
        for_each_schedule(steps, prefix, f);
        prefix.pop();
        steps[t] += 1;
    }
}

/// How many operations each thread performs in the exhaustive sweep.
/// The default profile keeps the sweep fast; `--features loom` widens it
/// (3 publishes × two 3-step readers = 560 · 3 = 1680 schedules, still
/// well under a second, but the point is the complete enumeration).
#[cfg(feature = "loom")]
const PROFILE: &[&[usize]] = &[&[2, 2], &[3, 3], &[2, 2, 2], &[3, 3, 3], &[4, 2, 2]];
#[cfg(not(feature = "loom"))]
const PROFILE: &[&[usize]] = &[&[2, 2], &[2, 2, 2], &[3, 2]];

#[test]
fn exhaustive_interleavings_preserve_pin_invariants() {
    for shape in PROFILE {
        let readers = shape.len() - 1;
        let mut schedules = 0usize;
        for_each_schedule(&mut shape.to_vec(), &mut Vec::new(), &mut |s| {
            run_schedule(s, readers);
            schedules += 1;
        });
        // Multiset permutation count as a sanity check that the sweep
        // actually enumerated (and did not, say, recurse wrongly).
        let total: usize = shape.iter().sum();
        let mut expect = (1..=total).product::<usize>();
        for &s in *shape {
            expect /= (1..=s).product::<usize>();
        }
        assert_eq!(schedules, expect, "shape {shape:?}");
    }
}

// ---------------------------------------------------------------------
// Randomized threaded stress
// ---------------------------------------------------------------------

/// A tiny deterministic PRNG (xorshift64*), so the stress run needs no
/// external crate and failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(feature = "loom")]
const STRESS_ROUNDS: usize = 64;
#[cfg(not(feature = "loom"))]
const STRESS_ROUNDS: usize = 16;

#[test]
fn threaded_publish_pin_stress_keeps_snapshots_consistent() {
    const READERS: usize = 3;
    const PUBLISHES: u64 = 25;
    for round in 0..STRESS_ROUNDS {
        let store = Arc::new(GenerationStore::new(tagged(0)));
        let barrier = Arc::new(Barrier::new(READERS + 1));
        let mut handles = Vec::new();
        for r in 0..READERS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let mut rng = Rng(0x9e37_79b9 ^ ((round as u64) << 8) ^ r as u64);
            handles.push(thread::spawn(move || {
                barrier.wait();
                let mut last_seen = 0;
                let mut pins = 0u64;
                while last_seen < PUBLISHES {
                    check_pin(&store.snapshot(), &mut last_seen);
                    pins += 1;
                    if rng.next().is_multiple_of(4) {
                        thread::yield_now();
                    }
                }
                pins
            }));
        }
        let mut rng = Rng(0xdead_beef ^ round as u64);
        barrier.wait();
        for n in 1..=PUBLISHES {
            assert_eq!(store.publish(tagged(n)), n);
            if rng.next().is_multiple_of(3) {
                thread::yield_now();
            }
        }
        for h in handles {
            let pins = h.join().expect("reader thread");
            assert!(pins > 0);
        }
        // Every reader drained to the final generation.
        assert_eq!(store.snapshot().epoch(), PUBLISHES);
        assert_eq!(tag_of(store.snapshot().database()), PUBLISHES);
    }
}
