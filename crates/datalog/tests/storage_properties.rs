//! Model-based property tests for fact storage: after any interleaving
//! of inserts and retracts — including retracting a relation down to
//! empty (which forgets its arity) and re-inserting at a different
//! arity — the relation must agree with a plain set model on
//! membership, length, pattern probes, and re-insert dedup, and the
//! database's fact counter must track exactly. Snapshot (COW) clones
//! taken mid-history must never observe later mutations.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;

use proptest::prelude::*;

use multilog_datalog::{Const, Database, Relation};

/// One storage op: `(insert, switch_weight, x, y)`. Facts are binary
/// `(n_x, n_y)` normally; when the weight selects an arity switch the
/// op targets the unary fact `(n_x)` instead — legal only while the
/// relation is empty, which is exactly the reset edge case under test.
type StorageOp = (bool, u8, usize, usize);

fn arb_ops() -> impl Strategy<Value = Vec<StorageOp>> {
    let op = (any::<bool>(), 0u8..100, 0usize..4, 0usize..4);
    proptest::collection::vec(op, 1..60)
}

/// ~15 % of ops try the unary-arity variant.
fn is_switch(weight: u8) -> bool {
    weight < 15
}

fn fact(arity_switch: bool, x: usize, y: usize) -> Vec<Const> {
    let mut f = vec![Const::sym(format!("n{x}"))];
    if !arity_switch {
        f.push(Const::sym(format!("n{y}")));
    }
    f
}

/// The reference model: facts as a plain ordered set.
#[derive(Default)]
struct Model {
    facts: BTreeSet<Vec<Const>>,
    arity: Option<usize>,
}

impl Model {
    /// Mirror one op; returns whether the storage op should be applied
    /// (arity-mismatched inserts would panic by contract, so the driver
    /// skips them — retracts of mismatched arity are defined no-ops).
    fn step(&mut self, insert: bool, f: &[Const]) -> bool {
        if insert {
            if self.arity.is_some_and(|a| a != f.len()) {
                return false;
            }
            self.arity = Some(f.len());
            self.facts.insert(f.to_vec());
        } else {
            self.facts.remove(f);
            if self.facts.is_empty() {
                self.arity = None;
            }
        }
        true
    }
}

fn assert_relation_matches(rel: &Relation, model: &Model) {
    assert_eq!(rel.len(), model.facts.len());
    assert_eq!(rel.is_empty(), model.facts.is_empty());
    assert_eq!(rel.arity(), model.arity);
    // Membership and dedup agree fact by fact over the probed universe.
    for switch in [false, true] {
        for x in 0..4 {
            for y in 0..4 {
                let f = fact(switch, x, y);
                assert_eq!(rel.contains(&f), model.facts.contains(&f), "fact {f:?}");
            }
        }
    }
    // Sorted enumeration is exactly the model set.
    let got: Vec<Vec<Const>> = rel.sorted().iter().map(|f| f.to_vec()).collect();
    let want: Vec<Vec<Const>> = model.facts.iter().cloned().collect();
    assert_eq!(got, want);
    // Index probes: every bound-column pattern returns the model filter.
    if let Some(arity) = model.arity {
        for col in 0..arity {
            for x in 0..4 {
                let mut pat: Vec<Option<Const>> = vec![None; arity];
                pat[col] = Some(Const::sym(format!("n{x}")));
                let got = rel.matching(&pat).count();
                let want = model
                    .facts
                    .iter()
                    .filter(|f| f.len() == arity && f[col] == Const::sym(format!("n{x}")))
                    .count();
                assert_eq!(got, want, "pattern col {col} = n{x}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Relation` under arbitrary insert/retract interleavings —
    /// including empty-reset arity switches — agrees with the model.
    #[test]
    fn relation_agrees_with_set_model(ops in arb_ops()) {
        let mut rel = Relation::new();
        let mut model = Model::default();
        for (insert, weight, x, y) in ops {
            let f = fact(is_switch(weight), x, y);
            // Mirror first: the model decides if an insert is legal at
            // the current arity (mismatches panic by contract).
            let mut probe = Model { facts: model.facts.clone(), arity: model.arity };
            if !probe.step(insert, &f) {
                continue;
            }
            if insert {
                let added = rel.insert(f.clone());
                assert_eq!(added, !model.facts.contains(&f), "insert {f:?}");
            } else {
                let removed = rel.retract(&f);
                assert_eq!(removed, model.facts.contains(&f), "retract {f:?}");
            }
            model = probe;
            assert_relation_matches(&rel, &model);
        }
        // Re-inserting everything present must dedup to all-false; the
        // stale-index regression this pins showed up exactly here, after
        // retract-to-empty/re-insert cycles.
        let current: Vec<Vec<Const>> = model.facts.iter().cloned().collect();
        for f in current {
            assert!(!rel.insert(f.clone()), "dedup lost {f:?}");
        }
        assert_eq!(rel.len(), model.facts.len());
    }

    /// `Database` tracks its global fact counter through the same
    /// interleavings, and COW clones pin their state: a snapshot taken
    /// before each op never changes when the original mutates.
    #[test]
    fn database_count_and_snapshots_survive_interleaving(ops in arb_ops()) {
        let mut db = Database::new();
        let mut model = Model::default();
        for (insert, weight, x, y) in ops {
            let f = fact(is_switch(weight), x, y);
            let mut probe = Model { facts: model.facts.clone(), arity: model.arity };
            if !probe.step(insert, &f) {
                continue;
            }
            let snapshot = db.clone();
            let before: Vec<_> = snapshot
                .relation("p")
                .map(|r| r.sorted())
                .unwrap_or_default();
            if insert {
                db.insert("p", f.clone());
            } else {
                db.retract("p", &f);
            }
            model = probe;
            assert_eq!(db.fact_count(), model.facts.len(), "fact_count after {f:?}");
            // The pre-op snapshot is bitwise stable under the mutation.
            let after: Vec<_> = snapshot
                .relation("p")
                .map(|r| r.sorted())
                .unwrap_or_default();
            assert_eq!(before, after, "snapshot mutated by op on {f:?}");
        }
    }
}
