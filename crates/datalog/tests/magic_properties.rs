//! Property tests for demand-driven (magic-sets) evaluation: over random
//! stratified programs — with recursion, negation, comparisons, and
//! arithmetic — and random partially-bound goals, `run_for_goal` must
//! return exactly the answers of `run_query` over the full fixpoint,
//! both sequentially and with 4 worker threads; and evaluation guards
//! must trip through the rewritten program exactly as they do through
//! the original.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::collection;
use proptest::prelude::*;

use multilog_datalog::{parse_program, parse_query, run_query, DatalogError, Engine, Program};

/// Render a random program over up to 6 nodes: a random `edge` relation,
/// its transitive closure, a negation layer (`unreach`), a comparison
/// rule (`two`), and a bounded arithmetic counter (`cnt`/`succ`).
fn random_program(edges: &[(usize, usize)]) -> Program {
    let mut src = String::new();
    for i in 0..6 {
        src.push_str(&format!("node(n{i}).\n"));
    }
    for &(a, b) in edges {
        src.push_str(&format!("edge(n{a}, n{b}).\n"));
    }
    src.push_str(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n\
         unreach(X, Y) :- node(X), node(Y), not path(X, Y).\n\
         two(X, Z) :- edge(X, Y), edge(Y, Z), X != Z.\n\
         cnt(0).\n\
         cnt(M) :- cnt(N), N < 5, M = N + 1.\n\
         succ(N, M) :- cnt(N), M = N + 1.\n",
    );
    parse_program(&src).unwrap()
}

/// A goal template selected by `kind`, bound at node/number `k`.
fn goal_source(kind: usize, k: usize) -> String {
    match kind {
        0 => format!("path(n{k}, X)"),
        1 => format!("path(X, n{k})"),
        2 => format!("unreach(n{k}, X)"),
        3 => format!("two(n{k}, X)"),
        4 => format!("path(n{k}, X), not edge(n{k}, X)"),
        5 => format!("edge(n{k}, X), path(X, Y)"),
        6 => format!("succ({k}, M)"),
        7 => format!("path(n{k}, n{})", (k + 1) % 6),
        // Binds nothing: exercises the cone fallback.
        _ => "two(X, Y), not unreach(X, Y)".to_owned(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn magic_equals_full(
        edges in collection::vec((0usize..6, 0usize..6), 0..16),
        kind in 0usize..9,
        k in 0usize..6,
    ) {
        let program = random_program(&edges);
        let goal = parse_query(&goal_source(kind, k)).unwrap();
        let full = Engine::new(&program).unwrap().run().unwrap();
        let expected = run_query(&full, &goal).unwrap();

        let (sequential, stats) = Engine::new(&program)
            .unwrap()
            .with_threads(1)
            .run_for_goal(&goal)
            .unwrap();
        prop_assert_eq!(
            &sequential, &expected,
            "sequential mismatch for goal `{}` over {:?}",
            goal_source(kind, k), edges
        );
        let demand = stats.demand.expect("goal runs record demand stats");
        prop_assert!(
            demand.facts_materialized <= full.fact_count(),
            "demand materialized {} > full {}",
            demand.facts_materialized, full.fact_count()
        );

        let (threaded, _) = Engine::new(&program)
            .unwrap()
            .with_threads(4)
            .with_parallel_threshold(0)
            .run_for_goal(&goal)
            .unwrap();
        prop_assert_eq!(
            &threaded, &expected,
            "threaded mismatch for goal `{}` over {:?}",
            goal_source(kind, k), edges
        );
    }
}

/// The divergent counter: never reaches a fixpoint, so only guards stop
/// it — through the original program and the rewritten one alike.
const DIVERGENT: &str = "n(0). n(M) :- n(N), M = N + 1.";

#[test]
fn budget_trips_identically_through_rewrite() {
    let program = parse_program(DIVERGENT).unwrap();
    let goal = parse_query("n(100)").unwrap();
    let full_err = Engine::new(&program)
        .unwrap()
        .with_fact_limit(5_000)
        .run()
        .unwrap_err();
    let goal_err = Engine::new(&program)
        .unwrap()
        .with_fact_limit(5_000)
        .run_for_goal(&goal)
        .unwrap_err();
    assert!(
        matches!(full_err, DatalogError::BudgetExceeded { budget: 5_000, .. }),
        "{full_err}"
    );
    assert!(
        matches!(goal_err, DatalogError::BudgetExceeded { budget: 5_000, .. }),
        "{goal_err}"
    );
    assert_eq!(full_err.to_string(), goal_err.to_string());
}

#[test]
fn deadline_trips_identically_through_rewrite() {
    let program = parse_program(DIVERGENT).unwrap();
    let goal = parse_query("n(100)").unwrap();
    let err = Engine::new(&program)
        .unwrap()
        .with_deadline(std::time::Duration::from_millis(50))
        .run_for_goal(&goal)
        .unwrap_err();
    assert!(
        matches!(err, DatalogError::DeadlineExceeded { limit_ms: 50 }),
        "{err}"
    );
}

#[test]
fn cancellation_trips_through_rewrite() {
    let program = parse_program(DIVERGENT).unwrap();
    let goal = parse_query("n(100)").unwrap();
    let token = multilog_datalog::CancelToken::new();
    token.cancel();
    let err = Engine::new(&program)
        .unwrap()
        .with_cancel_token(token)
        .run_for_goal(&goal)
        .unwrap_err();
    assert!(matches!(err, DatalogError::Cancelled), "{err}");
}
