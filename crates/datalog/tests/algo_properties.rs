//! Property tests for the native algorithm operators and stratified
//! aggregation: on random graphs, `@bfs`/`@cc` must compute exactly what
//! the equivalent rule-at-a-time Datalog computes (sequentially and
//! threaded), and aggregate heads must match a naive fold over distinct
//! witness bindings.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use multilog_datalog::{parse_program, Const, Database, Engine, Relation};

fn edges_src(edges: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for (a, b) in edges {
        src.push_str(&format!("edge(n{a}, n{b}).\n"));
    }
    src
}

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..8, 0usize..8), 0..24)
}

fn rows(db: &Database, pred: &str) -> Vec<Box<[Const]>> {
    db.relation(pred).map(Relation::sorted).unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_equals_rule_at_a_time_closure(edges in arb_edges()) {
        let mut src = edges_src(&edges);
        src.push_str(
            "reach(X, Y) :- @bfs(edge, X, Y).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n",
        );
        let p = parse_program(&src).unwrap();
        let db = Engine::new(&p).unwrap().run().unwrap();
        prop_assert_eq!(rows(&db, "reach"), rows(&db, "path"));
        // The threaded engine runs the same operator post-pass.
        let par = Engine::new(&p)
            .unwrap()
            .with_threads(4)
            .with_parallel_threshold(0)
            .run()
            .unwrap();
        prop_assert_eq!(rows(&par, "reach"), rows(&db, "path"));
    }

    #[test]
    fn cc_partitions_like_undirected_closure(edges in arb_edges()) {
        let mut src = edges_src(&edges);
        src.push_str(
            "cc(X, R) :- @cc(edge, X, R).\n\
             ud(X, Y) :- edge(X, Y).\n\
             ud(X, Y) :- edge(Y, X).\n\
             conn(X, Y) :- ud(X, Y).\n\
             conn(X, Z) :- ud(X, Y), conn(Y, Z).\n\
             node(X) :- ud(X, Y).\n",
        );
        let p = parse_program(&src).unwrap();
        for threads in [1usize, 4] {
            let db = Engine::new(&p)
                .unwrap()
                .with_threads(threads)
                .with_parallel_threshold(0)
                .run()
                .unwrap();
            // Exactly one representative per node of the relation.
            let rep: BTreeMap<Const, Const> = rows(&db, "cc")
                .into_iter()
                .map(|r| (r[0], r[1]))
                .collect();
            let nodes: BTreeSet<Const> =
                rows(&db, "node").into_iter().map(|r| r[0]).collect();
            prop_assert_eq!(
                rep.keys().copied().collect::<BTreeSet<_>>(),
                nodes.clone()
            );
            // Same representative exactly when the undirected closure
            // connects the pair (representative choice is the operator's;
            // the partition is what the rules pin down).
            let conn: BTreeSet<(Const, Const)> = rows(&db, "conn")
                .into_iter()
                .map(|r| (r[0], r[1]))
                .collect();
            for x in &nodes {
                for y in &nodes {
                    prop_assert_eq!(
                        rep[x] == rep[y],
                        x == y || conn.contains(&(*x, *y)),
                        "nodes {:?} {:?}", x, y
                    );
                }
            }
        }
    }

    #[test]
    fn aggregates_match_naive_oracle(
        cells in proptest::collection::vec((0usize..4, 0i64..7), 0..30)
    ) {
        // Duplicate (group, value) pairs are common in the generator:
        // the fold must count/sum each *distinct* witness binding once
        // (bag-of-distinct-bindings semantics), which the BTreeSet
        // oracle reproduces by construction.
        let mut src = String::new();
        for (g, w) in &cells {
            src.push_str(&format!("v(g{g}, {w}).\n"));
        }
        src.push_str(
            "cnt(G, count(W)) :- v(G, W).\n\
             tot(G, sum(W)) :- v(G, W).\n\
             lo(G, min(W)) :- v(G, W).\n\
             hi(G, max(W)) :- v(G, W).\n",
        );
        let p = parse_program(&src).unwrap();
        let db = Engine::new(&p).unwrap().run().unwrap();
        let distinct: BTreeSet<(usize, i64)> = cells.iter().copied().collect();
        let mut by_group: BTreeMap<usize, Vec<i64>> = BTreeMap::new();
        for (g, w) in &distinct {
            by_group.entry(*g).or_default().push(*w);
        }
        let expect = |f: &dyn Fn(&[i64]) -> i64| -> Vec<Box<[Const]>> {
            let mut out: Vec<Box<[Const]>> = by_group
                .iter()
                .map(|(g, ws)| {
                    vec![Const::sym(format!("g{g}")), Const::int(f(ws))].into_boxed_slice()
                })
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(rows(&db, "cnt"), expect(&|ws| ws.len() as i64));
        prop_assert_eq!(rows(&db, "tot"), expect(&|ws| ws.iter().sum()));
        prop_assert_eq!(rows(&db, "lo"), expect(&|ws| *ws.iter().min().unwrap()));
        prop_assert_eq!(rows(&db, "hi"), expect(&|ws| *ws.iter().max().unwrap()));
    }
}
