//! Query-restricted evaluation: only the dependency cone of the query's
//! predicates is materialized, with identical answers.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_datalog::{parse_program, parse_query, run_query, Const, Engine};

const SRC: &str = "
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    % An unrelated, expensive relation.
    n(1). n(2). n(3). n(4). n(5). n(6). n(7). n(8).
    big(A, B, C) :- n(A), n(B), n(C).
    % A relation depending on `path` through negation.
    node(a). node(b). node(c).
    unreach(X, Y) :- node(X), node(Y), not path(X, Y).
";

#[test]
fn restricted_run_skips_unrelated_relations() {
    let p = parse_program(SRC).unwrap();
    let db = Engine::new(&p).unwrap().run_for_query(["path"]).unwrap();
    assert_eq!(db.relation("path").unwrap().len(), 3);
    // The 512-fact cross-product was never materialized — out-of-cone
    // predicates do not even get an empty relation.
    assert!(db.relation("big").is_none());
    assert!(db.relation("unreach").is_none());
}

#[test]
fn restricted_answers_match_full_answers() {
    let p = parse_program(SRC).unwrap();
    let full = Engine::new(&p).unwrap().run().unwrap();
    let restricted = Engine::new(&p).unwrap().run_for_query(["path"]).unwrap();
    let q = parse_query("path(X, Y)").unwrap();
    assert_eq!(
        run_query(&full, &q).unwrap(),
        run_query(&restricted, &q).unwrap()
    );
}

#[test]
fn restriction_follows_negative_dependencies() {
    // `unreach` needs `path` (negatively) and `node`; both must be
    // materialized even though only `unreach` was requested.
    let p = parse_program(SRC).unwrap();
    let db = Engine::new(&p).unwrap().run_for_query(["unreach"]).unwrap();
    assert!(!db.relation("path").unwrap().is_empty());
    assert!(db.contains("unreach", &[Const::sym("b"), Const::sym("a")]));
    assert!(db.relation("big").is_none());
}

#[test]
fn dependencies_of_computes_the_cone() {
    let p = parse_program(SRC).unwrap();
    let deps = p.dependencies_of(["unreach"]);
    for needed in ["unreach", "node", "path", "edge"] {
        assert!(deps.contains(needed), "missing {needed}");
    }
    assert!(!deps.contains("big"));
    assert!(!deps.contains("n"));
}

#[test]
fn unknown_seed_is_harmless() {
    let p = parse_program(SRC).unwrap();
    let db = Engine::new(&p)
        .unwrap()
        .run_for_query(["nonexistent"])
        .unwrap();
    assert_eq!(db.fact_count(), 0);
}
