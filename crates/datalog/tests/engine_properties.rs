//! Property tests: the two evaluation strategies must agree on the least
//! model, and evaluation must be deterministic.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_datalog::Strategy as EvalStrategy;
use multilog_datalog::{parse_program, Const, Database, Engine, Executor, Program};

/// Random edge relations over a small constant universe plus the standard
/// recursive closure rules — a family of programs with genuine recursion.
fn arb_closure_program() -> impl Strategy<Value = Program> {
    let edge = (0usize..6, 0usize..6);
    proptest::collection::vec(edge, 0..20).prop_map(|edges| {
        let mut src = String::new();
        for (a, b) in edges {
            src.push_str(&format!("edge(n{a}, n{b}).\n"));
        }
        src.push_str(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).\n\
             node(X) :- edge(X, Y).\n\
             node(Y) :- edge(X, Y).\n\
             sink(X) :- node(X), not edge(X, Y).\n\
             unreach(X, Y) :- node(X), node(Y), not path(X, Y).\n",
        );
        parse_program(&src).expect("generated program is valid")
    })
}

/// Random stratified programs: random base facts plus a random subset of
/// rule templates spanning three strata (positive recursion, negation
/// over it, negation over the negation). Every subset is stratified and
/// safe by construction, so the generator exercises multi-stratum
/// pipelines without ever tripping the validation layer.
fn arb_stratified_program() -> impl Strategy<Value = Program> {
    let a_fact = (0usize..5, 0usize..5);
    let b_fact = 0usize..5;
    (
        proptest::collection::vec(a_fact, 0..15),
        proptest::collection::vec(b_fact, 0..6),
        0u32..256,
    )
        .prop_map(|(a, b, mask)| {
            let mut src = String::new();
            for (x, y) in a {
                src.push_str(&format!("a(c{x}, c{y}).\n"));
            }
            for x in b {
                src.push_str(&format!("b(c{x}).\n"));
            }
            let templates = [
                "t(X, Y) :- a(X, Y).",
                "t(X, Z) :- a(X, Y), t(Y, Z).",
                "s(X) :- b(X).",
                "s(X) :- t(X, Y), b(Y).",
                "u(X) :- b(X), not s(X).",
                "u(X) :- s(X), X != c0.",
                "v(X, Y) :- t(X, Y), not u(X).",
                "w(X) :- u(X), not t(X, X).",
            ];
            for (i, rule) in templates.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    src.push_str(rule);
                    src.push('\n');
                }
            }
            parse_program(&src).expect("generated program is valid")
        })
}

fn all_facts(db: &Database) -> Vec<(String, Box<[Const]>)> {
    let mut out = Vec::new();
    for (pred, rel) in db.relations() {
        for f in rel.sorted() {
            out.push((pred.to_owned(), f));
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_and_seminaive_agree(p in arb_closure_program()) {
        let semi = Engine::new(&p).unwrap().run().unwrap();
        let naive = Engine::new(&p)
            .unwrap()
            .with_strategy(EvalStrategy::Naive)
            .run()
            .unwrap();
        prop_assert_eq!(all_facts(&semi), all_facts(&naive));
    }

    #[test]
    fn evaluation_is_deterministic(p in arb_closure_program()) {
        let a = Engine::new(&p).unwrap().run().unwrap();
        let b = Engine::new(&p).unwrap().run().unwrap();
        prop_assert_eq!(all_facts(&a), all_facts(&b));
    }

    #[test]
    fn parallel_equals_sequential_on_closure(p in arb_closure_program()) {
        // threshold 0 forces the parallel path even on tiny deltas.
        let seq = Engine::new(&p).unwrap().with_threads(1).run().unwrap();
        for threads in [2usize, 4] {
            let par = Engine::new(&p)
                .unwrap()
                .with_threads(threads)
                .with_parallel_threshold(0)
                .run()
                .unwrap();
            prop_assert_eq!(all_facts(&seq), all_facts(&par));
        }
    }

    #[test]
    fn parallel_equals_sequential_on_stratified(p in arb_stratified_program()) {
        let seq = Engine::new(&p).unwrap().with_threads(1).run().unwrap();
        for threads in [2usize, 3, 8] {
            let par = Engine::new(&p)
                .unwrap()
                .with_threads(threads)
                .with_parallel_threshold(0)
                .run()
                .unwrap();
            prop_assert_eq!(all_facts(&seq), all_facts(&par));
        }
    }

    #[test]
    fn batched_equals_tuple_executor_on_closure(p in arb_closure_program()) {
        // The columnar batch executor and the tuple-at-a-time reference
        // executor run the same compiled plans; they must produce the
        // same least model on recursive programs with negation.
        let batched = Engine::new(&p)
            .unwrap()
            .with_executor(Executor::Batched)
            .run()
            .unwrap();
        let tuple = Engine::new(&p)
            .unwrap()
            .with_executor(Executor::Tuple)
            .run()
            .unwrap();
        prop_assert_eq!(all_facts(&batched), all_facts(&tuple));
    }

    #[test]
    fn batched_equals_tuple_executor_on_stratified(p in arb_stratified_program()) {
        let batched = Engine::new(&p)
            .unwrap()
            .with_executor(Executor::Batched)
            .run()
            .unwrap();
        let tuple = Engine::new(&p)
            .unwrap()
            .with_executor(Executor::Tuple)
            .run()
            .unwrap();
        prop_assert_eq!(all_facts(&batched), all_facts(&tuple));
    }

    #[test]
    fn strategies_agree_on_stratified(p in arb_stratified_program()) {
        let semi = Engine::new(&p).unwrap().run().unwrap();
        let naive = Engine::new(&p)
            .unwrap()
            .with_strategy(EvalStrategy::Naive)
            .run()
            .unwrap();
        prop_assert_eq!(all_facts(&semi), all_facts(&naive));
    }

    #[test]
    fn model_is_closed_under_rules(p in arb_closure_program()) {
        // Applying every rule to the fixpoint database adds nothing new:
        // re-running the engine seeded with its own output is idempotent.
        // (We check closure indirectly: path must contain edge, and the
        // composition of edge and path.)
        let db = Engine::new(&p).unwrap().run().unwrap();
        let empty = multilog_datalog::Relation::new();
        let edges = db.relation("edge").unwrap_or(&empty);
        let paths = db.relation("path").unwrap_or(&empty);
        for e in edges.iter() {
            prop_assert!(paths.contains(&e), "edge {:?} not in path", e);
        }
        for e in edges.iter() {
            for q in paths.iter() {
                if e[1] == q[0] {
                    let composed = vec![e[0], q[1]];
                    prop_assert!(paths.contains(&composed));
                }
            }
        }
    }

    #[test]
    fn negation_partitions_node_pairs(p in arb_closure_program()) {
        // unreach(X, Y) must hold exactly when path(X, Y) fails, over nodes.
        let db = Engine::new(&p).unwrap().run().unwrap();
        let empty = multilog_datalog::Relation::new();
        let nodes = db.relation("node").unwrap_or(&empty);
        let paths = db.relation("path").unwrap_or(&empty);
        let unreach = db.relation("unreach").unwrap_or(&empty);
        for x in nodes.iter() {
            for y in nodes.iter() {
                let pair = vec![x[0], y[0]];
                let has_path = paths.contains(&pair);
                let has_unreach = unreach.contains(&pair);
                prop_assert_eq!(has_path, !has_unreach);
            }
        }
    }
}

#[test]
fn printed_program_reparses_to_same_model() {
    let src = "edge(a, b). edge(b, c).\n\
               path(X, Y) :- edge(X, Y).\n\
               path(X, Y) :- edge(X, Z), path(Z, Y).\n\
               node(X) :- edge(X, Y).\n\
               isolated(X) :- node(X), not path(X, Y).";
    let p1 = parse_program(src).unwrap();
    let p2 = parse_program(&p1.to_string()).unwrap();
    let d1 = Engine::new(&p1).unwrap().run().unwrap();
    let d2 = Engine::new(&p2).unwrap().run().unwrap();
    assert_eq!(all_facts(&d1), all_facts(&d2));
}
