//! Dev harness: per-commit timing attribution for the update-churn
//! workload (retract vs re-insert commits).
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use multilog_datalog::{parse_program, Const, IncrementalEngine};

fn main() {
    let n = 512usize;
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n");
    let program = parse_program(&src).unwrap();

    let t0 = Instant::now();
    let mut engine = IncrementalEngine::new(&program).unwrap();
    println!("materialize: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    let pairs = 10usize;
    let targets: Vec<(String, String)> = (0..pairs)
        .map(|k| {
            let i = if k % 2 == 0 { k / 2 } else { n - 1 - k / 2 };
            (format!("n{i}"), format!("n{}", i + 1))
        })
        .collect();

    let (mut t_retract, mut t_insert) = (0.0f64, 0.0f64);
    for (a, b) in &targets {
        for insert in [false, true] {
            let fact = vec![Const::sym(a), Const::sym(b)];
            engine.begin().unwrap();
            if insert {
                engine.insert("edge", fact).unwrap();
            } else {
                engine.retract("edge", fact).unwrap();
            }
            let t = Instant::now();
            engine.commit().unwrap();
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if insert {
                t_insert += ms;
            } else {
                t_retract += ms;
            }
        }
    }
    println!("retract commits: {t_retract:.1} ms   insert commits: {t_insert:.1} ms");
}
