//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal timing harness exposing the criterion API subset its
//! benches use: `Criterion::benchmark_group`, `bench_with_input` /
//! `bench_function`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros, and `black_box`.
//!
//! Statistics are deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and prints the median per-iteration time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{name}"),
            10,
            Duration::from_secs(2),
            Duration::from_millis(300),
            &mut f,
        );
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    // Warm up and estimate the per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_millis(1);
    while warm_start.elapsed() < warm_up_time {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
    }
    // Pick an iteration count so a sample is ~measurement_time/sample_size.
    let budget = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(100));
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let best = samples[0];
    println!(
        "{label}: median {median:?}/iter (best {best:?}, {sample_size} samples x {iters} iters)"
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_quickly() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        g.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
    }
}
