//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the proptest API its test-suites use: strategies
//! over integer ranges, tuples, arrays, `Just`, collections, simple
//! regex-like string patterns, `prop_oneof!`, `prop_map`, and the
//! `proptest!` test macro with `prop_assert*` assertions.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (reproducible runs, no persistence files) and
//! failing cases are **not shrunk** — the failing values are printed
//! via `Debug` where available in the assertion message instead.

#![forbid(unsafe_code)]

pub mod strategy;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    ///
    /// The set may be smaller than the drawn length when duplicates are
    /// generated, matching upstream semantics loosely.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported surface (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property within a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// Runs the cases for one `proptest!`-generated test.
///
/// Used by the `proptest!` macro expansion; not part of the public
/// upstream API surface.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut strategy::TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        // Deterministic per-test stream: hash the test name with the case
        // index so every test explores its own sequence.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = strategy::TestRng::new(seed ^ (u64::from(i)).wrapping_mul(0x9E37));
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!("proptest case {i}/{} failed: {msg}", config.cases);
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = { $cfg }; $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = { }; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a
/// time so the optional config expression can be reused per function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = { $($cfg:expr)? }; ) => {};
    (
        cfg = { $($cfg:expr)? };
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_mut, unused_assignments)]
            let mut config = $crate::ProptestConfig::default();
            $(config = $cfg;)?
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = { $($cfg)? }; $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), lhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Weighted-free union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
