//! Value-generation strategies: the core trait and the built-in
//! implementations (integer ranges, tuples, arrays, `Just`, unions,
//! simple regex-like string patterns).

use std::ops::{Range, RangeInclusive};

/// The generator driving a test run (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of random values of one type.
///
/// Object-safe core (`generate`); the combinators require `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitive types (see [`Arbitrary`]).
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// String strategies from `&'static str` regex-like patterns.
///
/// Supported syntax (the subset this workspace's tests use):
/// `[a-z]` character classes (single range), `\PC` (any printable
/// character), and the postfix quantifiers `?` (0 or 1) and `*`
/// (0 to 39). Any other character generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (elem, quant) in elements {
            let reps = match quant {
                Quant::One => 1,
                Quant::Opt => rng.below(2) as usize,
                Quant::Star => rng.below(40) as usize,
            };
            for _ in 0..reps {
                out.push(elem.sample(rng));
            }
        }
        out
    }
}

#[derive(Clone)]
enum Elem {
    Class(char, char),
    AnyPrintable,
    Literal(char),
}

#[derive(Clone, Copy)]
enum Quant {
    One,
    Opt,
    Star,
}

impl Elem {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Elem::Class(lo, hi) => {
                let span = (*hi as u32 - *lo as u32) + 1;
                char::from_u32(*lo as u32 + rng.below(u64::from(span)) as u32).unwrap_or(*lo)
            }
            Elem::AnyPrintable => {
                // A spread of ASCII, punctuation that matters to the
                // parsers, and a few multibyte characters.
                const POOL: &[char] = &[
                    'a', 'z', 'A', 'Z', '0', '9', '_', ' ', '\t', '(', ')', ',', '.', ':', '-',
                    '?', '!', '=', '<', '>', '+', '*', '/', '%', '"', '\\', '\'', '[', ']', '~',
                    'é', 'λ', '中', '∀',
                ];
                POOL[rng.below(POOL.len() as u64) as usize]
            }
            Elem::Literal(c) => *c,
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<(Elem, Quant)> {
    let mut out: Vec<(Elem, Quant)> = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let elem = match c {
            '[' => {
                let lo = chars.next().unwrap_or('a');
                let elem = if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars.next().unwrap_or(lo);
                    Elem::Class(lo, hi)
                } else {
                    Elem::Literal(lo)
                };
                while let Some(&c) = chars.peek() {
                    chars.next();
                    if c == ']' {
                        break;
                    }
                }
                elem
            }
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: any printable character.
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    Elem::AnyPrintable
                }
                Some(other) => Elem::Literal(other),
                None => Elem::Literal('\\'),
            },
            other => Elem::Literal(other),
        };
        let quant = match chars.peek() {
            Some('?') => {
                chars.next();
                Quant::Opt
            }
            Some('*') => {
                chars.next();
                Quant::Star
            }
            _ => Quant::One,
        };
        out.push((elem, quant));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let v = (0usize..=4).generate(&mut rng);
            assert!(v <= 4);
        }
    }

    #[test]
    fn pattern_strategies() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = "[a-e]".generate(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='e').contains(&s.chars().next().unwrap()));
            let s = "[k-m][0-9]?".generate(&mut rng);
            assert!(!s.is_empty() && s.chars().count() <= 2);
            let _ = "\\PC*".generate(&mut rng);
        }
    }

    #[test]
    fn union_and_map() {
        let mut rng = TestRng::new(3);
        let s = crate::prop_oneof![Just("x"), Just("y")];
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(v == "x" || v == "y");
        }
        let m = (0usize..3).prop_map(|v| v * 10);
        for _ in 0..20 {
            assert!(m.generate(&mut rng) % 10 == 0);
        }
    }
}
